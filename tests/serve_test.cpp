// cf::serve — the micro-batching inference service (SERVING.md).
//
// The load-bearing property is the serving determinism rule
// (DESIGN.md §2.4): a request's result is bitwise identical no matter
// which batch it lands in, which worker stream runs it, or what ran on
// that stream before. Everything else pinned here is the service
// contract: typed Overloaded rejection under load, deadline flush of
// underfull batches, clean shutdown that drains in-flight work, and an
// inference context that never reallocates once warm (the property a
// long-lived server leans on). The TSan gate (scripts/
// check_sanitizers.sh tsan) runs the Serve* suites.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "dnn/network.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using serve::InferenceResult;
using serve::Server;
using serve::ServerConfig;
using serve::SubmitStatus;
using tensor::Tensor;

std::shared_ptr<const dnn::Network> make_network(std::int64_t dhw,
                                                 std::uint64_t seed) {
  return std::make_shared<const dnn::Network>(
      core::build_network(core::cosmoflow_scaled(dhw), seed));
}

std::vector<Tensor> make_inputs(const dnn::Network& net, std::size_t n,
                                std::uint64_t seed) {
  std::vector<Tensor> inputs;
  inputs.reserve(n);
  runtime::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor input(net.input_shape());
    tensor::fill_normal(input, rng, 0.0f, 1.0f);
    inputs.push_back(std::move(input));
  }
  return inputs;
}

// Serial single-stream reference: what forward() says outside any
// server, batching, or threading.
std::vector<std::vector<float>> reference_outputs(
    const dnn::Network& net, const std::vector<Tensor>& inputs) {
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
  runtime::ThreadPool pool(1);
  std::vector<std::vector<float>> outputs;
  outputs.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    outputs.push_back(ctx.forward(input, pool).to_vector());
  }
  return outputs;
}

// Submit, retrying politely while the server sheds load. Fails the
// test if the server shut down underneath us.
std::future<InferenceResult> submit_until_accepted(Server& server,
                                                   const Tensor& input) {
  for (;;) {
    std::future<InferenceResult> future;
    const SubmitStatus status = server.submit(input.clone(), &future);
    if (status == SubmitStatus::kAccepted) return future;
    EXPECT_EQ(status, SubmitStatus::kOverloaded);
    std::this_thread::yield();
  }
}

// --- §2.4: batch membership must not change a single output bit. ---

TEST(Serve, BatchMembershipDoesNotChangeOutputBits) {
  const auto net = make_network(8, 21);
  const std::vector<Tensor> inputs = make_inputs(*net, 10, 33);
  const std::vector<std::vector<float>> expected =
      reference_outputs(*net, inputs);

  // Sweep batching regimes: singleton batches, partial fills, one big
  // batch, greedy zero-delay, and multi-worker dispatch. Same bits
  // everywhere.
  std::vector<ServerConfig> configs(5);
  configs[0].workers = 1;
  configs[0].max_batch = 1;
  configs[0].max_delay_seconds = 0.0;
  configs[1].workers = 1;
  configs[1].max_batch = 4;
  configs[1].max_delay_seconds = 5e-3;
  configs[2].workers = 1;
  configs[2].max_batch = 10;
  configs[2].max_delay_seconds = 20e-3;
  configs[3].workers = 1;
  configs[3].max_batch = 8;
  configs[3].max_delay_seconds = 0.0;  // greedy: take what is queued
  configs[4].workers = 2;
  configs[4].threads_per_worker = 2;
  configs[4].max_batch = 3;
  configs[4].max_delay_seconds = 1e-3;

  for (std::size_t c = 0; c < configs.size(); ++c) {
    configs[c].metric_prefix = "serve_test";
    Server server(net, configs[c]);
    std::vector<std::future<InferenceResult>> futures;
    futures.reserve(inputs.size());
    for (const Tensor& input : inputs) {
      futures.push_back(submit_until_accepted(server, input));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      InferenceResult result = futures[i].get();
      EXPECT_EQ(tensor::max_abs_diff(result.output, expected[i]), 0.0f)
          << "config " << c << " request " << i;
      EXPECT_GE(result.batch_size, 1u);
      EXPECT_LE(result.batch_size, configs[c].max_batch);
      EXPECT_LT(result.worker, configs[c].workers);
      EXPECT_GE(result.total_seconds, result.compute_seconds);
    }
    server.shutdown();
    auto& reg = obs::Registry::global();
    EXPECT_EQ(reg.counter("serve_test/completed").value(),
              static_cast<std::int64_t>(inputs.size()))
        << "config " << c;
    EXPECT_EQ(reg.histogram("serve_test/latency").snapshot().count,
              inputs.size())
        << "config " << c;
  }
}

// --- Admission control: beyond the queue budget, a typed no. ---

TEST(Serve, OverloadedSubmissionsGetTypedRejection) {
  const auto net = make_network(8, 5);
  ServerConfig config;
  config.workers = 1;
  config.max_batch = 2;
  config.max_delay_seconds = 50e-3;
  config.queue_capacity = 1;
  config.metric_prefix = "serve_test_bp";
  Server server(net, config);

  // Total absorption before rejection: queue (1) + forming batch (2) +
  // batch queue (1 batch of 2) + the batch a worker holds (2), plus at
  // most a couple of batches the worker manages to finish while we
  // submit. 32 back-to-back submissions must overflow that.
  const std::vector<Tensor> inputs = make_inputs(*net, 32, 7);
  std::vector<std::future<InferenceResult>> accepted;
  std::size_t rejected = 0;
  for (const Tensor& input : inputs) {
    std::future<InferenceResult> future;
    const SubmitStatus status = server.submit(input.clone(), &future);
    if (status == SubmitStatus::kAccepted) {
      accepted.push_back(std::move(future));
    } else {
      ASSERT_EQ(status, SubmitStatus::kOverloaded);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(serve::to_string(SubmitStatus::kOverloaded), "overloaded");

  // Every accepted request still resolves; rejected ones never queued.
  for (auto& future : accepted) {
    EXPECT_FALSE(future.get().output.empty());
  }
  server.shutdown();
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("serve_test_bp/accepted").value(),
            static_cast<std::int64_t>(accepted.size()));
  EXPECT_EQ(reg.counter("serve_test_bp/rejected").value(),
            static_cast<std::int64_t>(rejected));
  EXPECT_EQ(reg.counter("serve_test_bp/completed").value(),
            static_cast<std::int64_t>(accepted.size()));
  EXPECT_EQ(accepted.size() + rejected, inputs.size());
}

// --- Deadline budget: an underfull batch flushes, never starves. ---

TEST(Serve, DeadlineFlushesUnderfullBatches) {
  const auto net = make_network(8, 9);
  ServerConfig config;
  config.workers = 1;
  config.max_batch = 64;  // far more than we will ever submit
  config.max_delay_seconds = 10e-3;
  config.metric_prefix = "serve_test_dl";
  Server server(net, config);

  const std::vector<Tensor> inputs = make_inputs(*net, 3, 11);
  std::vector<std::future<InferenceResult>> futures;
  for (const Tensor& input : inputs) {
    futures.push_back(submit_until_accepted(server, input));
  }
  for (auto& future : futures) {
    // Without the deadline flush this would hang waiting for 64.
    InferenceResult result = future.get();
    EXPECT_LE(result.batch_size, inputs.size());
  }
  server.shutdown();
  const auto fill =
      obs::Registry::global().stat("serve_test_dl/batch_fill").snapshot();
  EXPECT_GE(fill.count(), 1u);
  EXPECT_LE(fill.max(), static_cast<double>(inputs.size()));
}

// --- Concurrent client threads, multiple worker streams: still the
// serial bits. The TSan gate runs this test. ---

TEST(Serve, ConcurrentSubmittersMatchSerialReference) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 5;
  const auto net = make_network(8, 17);

  // Distinct deterministic inputs per (client, rep).
  std::vector<std::vector<Tensor>> inputs(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    runtime::Rng rng(41, static_cast<std::uint64_t>(c));
    for (std::size_t r = 0; r < kPerClient; ++r) {
      Tensor input(net->input_shape());
      tensor::fill_normal(input, rng, 0.0f, 1.0f);
      inputs[c].push_back(std::move(input));
    }
  }
  std::vector<std::vector<std::vector<float>>> expected(kClients);
  {
    dnn::ExecContext ctx = net->make_context(dnn::ExecMode::kInference);
    runtime::ThreadPool pool(1);
    for (std::size_t c = 0; c < kClients; ++c) {
      for (const Tensor& input : inputs[c]) {
        expected[c].push_back(ctx.forward(input, pool).to_vector());
      }
    }
  }

  ServerConfig config;
  config.workers = 2;
  config.threads_per_worker = 2;
  config.max_batch = 4;
  config.max_delay_seconds = 1e-3;
  config.metric_prefix = "serve_test_mt";
  Server server(net, config);

  std::vector<std::vector<std::vector<float>>> actual(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &inputs, &actual, c] {
      for (const Tensor& input : inputs[c]) {
        std::future<InferenceResult> future =
            submit_until_accepted(server, input);
        actual[c].push_back(future.get().output);
      }
    });
  }
  for (auto& client : clients) client.join();
  server.shutdown();

  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(actual[c].size(), expected[c].size()) << "client " << c;
    for (std::size_t r = 0; r < expected[c].size(); ++r) {
      EXPECT_EQ(tensor::max_abs_diff(actual[c][r], expected[c][r]), 0.0f)
          << "client " << c << " rep " << r;
    }
  }
}

// --- Shutdown drains: every accepted future resolves, then the door
// closes with a typed status. ---

TEST(Serve, ShutdownDrainsInFlightRequests) {
  const auto net = make_network(8, 25);
  ServerConfig config;
  config.workers = 1;
  config.max_batch = 2;
  config.max_delay_seconds = 1e-3;
  config.metric_prefix = "serve_test_sd";
  Server server(net, config);

  const std::vector<Tensor> inputs = make_inputs(*net, 12, 27);
  std::vector<std::future<InferenceResult>> futures;
  for (const Tensor& input : inputs) {
    futures.push_back(submit_until_accepted(server, input));
  }
  // Most of these are still queued or forming; shutdown must deliver
  // them all, not drop them.
  server.shutdown();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << i;
    EXPECT_FALSE(futures[i].get().output.empty()) << "request " << i;
  }
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("serve_test_sd/completed").value(),
            static_cast<std::int64_t>(inputs.size()));

  // The door is closed, and says so.
  std::future<InferenceResult> late;
  EXPECT_EQ(server.submit(inputs[0].clone(), &late),
            SubmitStatus::kShutdown);
  // Idempotent: destructor will call shutdown() again.
  server.shutdown();
}

// --- Malformed requests are errors, not load conditions. ---

TEST(Serve, SubmitRejectsWrongInputShape) {
  const auto net = make_network(8, 3);
  ServerConfig config;
  config.workers = 1;
  config.metric_prefix = "serve_test_shape";
  Server server(net, config);
  Tensor wrong(tensor::Shape{1, 4, 4, 4});
  wrong.fill(0.0f);
  EXPECT_THROW(server.submit(std::move(wrong), nullptr),
               std::invalid_argument);
  EXPECT_EQ(
      obs::Registry::global().counter("serve_test_shape/accepted").value(),
      0);
}

// --- The const-Network handle serving rests on: inference streams
// only; training through a shared read-only model is a hard error. ---

TEST(Serve, ConstNetworkHandsOutInferenceContextsOnly) {
  const auto net = make_network(8, 19);
  dnn::ExecContext ctx = net->make_context(dnn::ExecMode::kInference);
  runtime::ThreadPool pool(1);
  Tensor input(net->input_shape());
  runtime::Rng rng(23);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  EXPECT_EQ(ctx.forward(input, pool).to_vector().size(),
            static_cast<std::size_t>(net->output_shape().numel()));
  EXPECT_THROW(net->make_context(dnn::ExecMode::kTraining),
               std::logic_error);
}

// --- Server-style reuse: one warm inference context sweeps hundreds
// of varying requests without a single reallocation. The dnn/ctx/*
// gauges written at construction stay the truth for the whole run. ---

TEST(ServeContextReuse, NoReallocationAcrossHundredsOfBatches) {
  const auto net = make_network(16, 29);
  dnn::ExecContext ctx = net->make_context(dnn::ExecMode::kInference);
  runtime::ThreadPool pool(2);

  const std::size_t activation_bytes = ctx.activation_bytes();
  const std::size_t total_bytes = ctx.total_bytes();
  auto& reg = obs::Registry::global();
  ASSERT_EQ(reg.gauge("dnn/ctx/activation_bytes").value(),
            static_cast<double>(activation_bytes));
  ASSERT_EQ(reg.gauge("dnn/ctx/total_bytes").value(),
            static_cast<double>(total_bytes));

  // Warm-up request, kept as the bitwise anchor.
  runtime::Rng rng(31);
  Tensor anchor(net->input_shape());
  tensor::fill_normal(anchor, rng, 0.0f, 1.0f);
  const std::vector<float> anchor_out =
      ctx.forward(anchor, pool).to_vector();

  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    Tensor input(net->input_shape());
    // Vary the distribution, not just the sample, across requests.
    tensor::fill_normal(input, rng, static_cast<float>(i % 7) * 0.1f,
                        0.5f + static_cast<float>(i % 3) * 0.5f);
    ctx.forward(input, pool);
    if (i % 50 == 0) {
      EXPECT_EQ(ctx.activation_bytes(), activation_bytes) << "req " << i;
      EXPECT_EQ(ctx.total_bytes(), total_bytes) << "req " << i;
    }
  }
  // Still exactly the construction-time footprint…
  EXPECT_EQ(ctx.activation_bytes(), activation_bytes);
  EXPECT_EQ(ctx.total_bytes(), total_bytes);
  EXPECT_EQ(reg.gauge("dnn/ctx/activation_bytes").value(),
            static_cast<double>(activation_bytes));
  EXPECT_EQ(reg.gauge("dnn/ctx/total_bytes").value(),
            static_cast<double>(total_bytes));
  // …and still exactly the warm-up bits (state from 200 intervening
  // requests leaked nothing into the arenas).
  EXPECT_EQ(tensor::max_abs_diff(ctx.forward(anchor, pool).to_vector(),
                                 anchor_out),
            0.0f);
}

}  // namespace
}  // namespace cf
