#include "optim/sgd.hpp"

#include <stdexcept>

namespace cf::optim {

SgdMomentum::SgdMomentum(std::vector<dnn::ParamView> params, double momentum,
                         std::shared_ptr<const LrSchedule> schedule)
    : params_(std::move(params)),
      momentum_(momentum),
      schedule_(std::move(schedule)) {
  if (params_.empty()) throw std::invalid_argument("SgdMomentum: no params");
  if (!schedule_) throw std::invalid_argument("SgdMomentum: null schedule");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("SgdMomentum: momentum must be in [0, 1)");
  }
  velocity_.reserve(params_.size());
  for (const dnn::ParamView& p : params_) {
    if (p.value == nullptr || p.grad == nullptr) {
      throw std::invalid_argument("SgdMomentum: malformed parameter view");
    }
    velocity_.emplace_back(p.value->size(), 0.0f);
  }
}

void SgdMomentum::step() {
  const double lr = schedule_->lr(step_);
  ++step_;
  const float rate = static_cast<float>(lr);
  const float mu = static_cast<float>(momentum_);
  for (std::size_t group = 0; group < params_.size(); ++group) {
    float* w = params_[group].value->data();
    const float* g = params_[group].grad->data();
    std::vector<float>& vel = velocity_[group];
    for (std::size_t i = 0; i < vel.size(); ++i) {
      vel[i] = mu * vel[i] + g[i];
      w[i] -= rate * vel[i];
    }
  }
}

}  // namespace cf::optim
