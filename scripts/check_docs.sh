#!/usr/bin/env sh
# Docs lint, run from ctest (see tests/CMakeLists.txt):
#   1. every src/<module>/ directory must be mentioned in DESIGN.md, so
#      new subsystems cannot land undocumented;
#   2. every build/bench/NAME or build/examples/NAME command inside a
#      README code fence must correspond to a target declared in the
#      matching CMakeLists (add_executable(NAME ...) or NAME in a
#      target list), so the README never advertises targets that do
#      not build;
#   3. every bench_* target declared in bench/CMakeLists.txt and every
#      BENCH_*.json baseline checked into the repo root must be
#      mentioned in EXPERIMENTS.md, so no benchmark or result file
#      exists without a written account of what it measures;
#   4. every bench/example binary that parses a --precision flag must
#      have that flag documented in EXPERIMENTS.md next to its name,
#      so the reduced-precision ablations stay discoverable;
#   5. likewise for the intra-op threading ablation flags: a binary
#      parsing --cost-model or a --threads-per-* flag must be named in
#      EXPERIMENTS.md alongside documentation of that flag;
#   6. likewise for the zero-copy data-path ablation flags: a binary
#      parsing --no-mmap, --no-pool or --crc= must be named in
#      EXPERIMENTS.md alongside documentation of that flag;
#   7. likewise for the stock-topology selector: a binary parsing
#      --preset= must be named in EXPERIMENTS.md alongside
#      documentation of that flag, so the preset names (cosmoflow-128
#      et al.) stay discoverable.
#
# Usage: check_docs.sh [repo_root]
set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 1

fail=0

for dir in src/*/; do
  module="$(basename "$dir")"
  if ! grep -q "$module" DESIGN.md; then
    echo "FAIL: src/$module/ is not mentioned in DESIGN.md" >&2
    fail=1
  fi
done

# Extract code-fenced lines from README.md, keep tokens that look like
# build/bench/NAME or build/examples/NAME (either the binary path form
# used in run commands or a --target argument).
targets="$(awk '/^```/{fence=!fence; next} fence' README.md |
  grep -oE 'build/(bench|examples)/[A-Za-z0-9_]+' | sort -u)"

for target in $targets; do
  kind="$(printf '%s' "$target" | cut -d/ -f2)"
  name="$(printf '%s' "$target" | cut -d/ -f3)"
  if ! grep -qw "$name" "$kind/CMakeLists.txt"; then
    echo "FAIL: README references $target but $kind/CMakeLists.txt" \
         "declares no target named $name" >&2
    fail=1
  fi
done

# Every declared bench binary is documented in EXPERIMENTS.md.
benches="$(grep -oE 'bench_[a-z0-9_]+' bench/CMakeLists.txt | sort -u)"
for bench in $benches; do
  if ! grep -qw "$bench" EXPERIMENTS.md; then
    echo "FAIL: bench/CMakeLists.txt declares $bench but EXPERIMENTS.md" \
         "never mentions it" >&2
    fail=1
  fi
done

# Every checked-in benchmark baseline is documented in EXPERIMENTS.md.
for baseline in BENCH_*.json; do
  [ -e "$baseline" ] || continue
  if ! grep -qw "$baseline" EXPERIMENTS.md; then
    echo "FAIL: $baseline exists but EXPERIMENTS.md never mentions it" >&2
    fail=1
  fi
done

# Every binary exposing --precision is documented with it. The lint
# keys on the flag parser in the source, so adding the flag to a new
# bench without a written ablation account fails here.
for src in bench/*.cpp examples/*.cpp; do
  [ -e "$src" ] || continue
  grep -q -- '--precision=' "$src" || continue
  name="$(basename "$src" .cpp)"
  if ! grep -q -- "--precision" EXPERIMENTS.md; then
    echo "FAIL: $name parses --precision but EXPERIMENTS.md never" \
         "documents the flag" >&2
    fail=1
  fi
  if ! grep -qw "$name" EXPERIMENTS.md; then
    echo "FAIL: $name parses --precision but EXPERIMENTS.md never" \
         "mentions $name" >&2
    fail=1
  fi
done

# Intra-op threading ablations (DESIGN.md §2.6): any binary parsing
# --cost-model or a --threads-per-{stream,worker,rank} flag must be
# documented in EXPERIMENTS.md together with the flag it parses.
for src in bench/*.cpp examples/*.cpp; do
  [ -e "$src" ] || continue
  name="$(basename "$src" .cpp)"
  for flag in --cost-model --threads-per-stream --threads-per-worker \
              --threads-per-rank; do
    grep -q -- "$flag" "$src" || continue
    if ! grep -q -- "$flag" EXPERIMENTS.md; then
      echo "FAIL: $name parses $flag but EXPERIMENTS.md never" \
           "documents the flag" >&2
      fail=1
    fi
    if ! grep -qw "$name" EXPERIMENTS.md; then
      echo "FAIL: $name parses $flag but EXPERIMENTS.md never" \
           "mentions $name" >&2
      fail=1
    fi
  done
done

# Zero-copy data-path ablations (DESIGN.md §2.7): any binary parsing
# --no-mmap, --no-pool or --crc= must be documented in EXPERIMENTS.md
# together with the flag it parses.
for src in bench/*.cpp examples/*.cpp; do
  [ -e "$src" ] || continue
  name="$(basename "$src" .cpp)"
  for flag in --no-mmap --no-pool --crc=; do
    grep -q -- "$flag" "$src" || continue
    if ! grep -q -- "$flag" EXPERIMENTS.md; then
      echo "FAIL: $name parses $flag but EXPERIMENTS.md never" \
           "documents the flag" >&2
      fail=1
    fi
    if ! grep -qw "$name" EXPERIMENTS.md; then
      echo "FAIL: $name parses $flag but EXPERIMENTS.md never" \
           "mentions $name" >&2
      fail=1
    fi
  done
done

# Stock topology presets: any binary parsing --preset= must be
# documented in EXPERIMENTS.md together with the flag.
for src in bench/*.cpp examples/*.cpp; do
  [ -e "$src" ] || continue
  name="$(basename "$src" .cpp)"
  grep -q -- '--preset=' "$src" || continue
  if ! grep -q -- "--preset" EXPERIMENTS.md; then
    echo "FAIL: $name parses --preset but EXPERIMENTS.md never" \
         "documents the flag" >&2
    fail=1
  fi
  if ! grep -qw "$name" EXPERIMENTS.md; then
    echo "FAIL: $name parses --preset but EXPERIMENTS.md never" \
         "mentions $name" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_docs: OK"
