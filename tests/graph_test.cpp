// dnn::Graph — the explicit-edge IR under Network (DESIGN.md §2.8).
//
// Pins the four load-bearing properties of the graph refactor:
//  (a) sequential topologies lowered onto linear graphs stay bitwise
//      identical across fusion x memory-planning x precision x thread
//      counts — the refactor is invisible to every existing workload;
//  (b) fan-in gradient accumulation is deterministic (bitwise-repeatable
//      and planner-invariant) and edge-aware fusion refuses multi-
//      consumer and head-pinned producers;
//  (c) the residual multi-head demo topology backpropagates correctly
//      (gradient check against central finite differences) and trains
//      and serves end to end through cf::serve;
//  (d) per-shape inference contexts (Network::make_shape_view) agree
//      bitwise with a dedicated network planned at the same shape, and
//      run concurrently against the parent (the TSan smoke in
//      scripts/check_sanitizers.sh runs Graph*.* with a concurrent
//      per-shape-context leg).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "dnn/activations.hpp"
#include "dnn/dense.hpp"
#include "dnn/graph.hpp"
#include "dnn/graph_ops.hpp"
#include "dnn/loss.hpp"
#include "dnn/network.hpp"
#include "obs/metrics.hpp"
#include "optim/adam.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using dnn::ExecMode;
using dnn::kGraphInput;
using dnn::NodeId;
using dnn::Precision;
using tensor::Shape;
using tensor::Tensor;

Tensor random_input(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  runtime::Rng rng(seed);
  tensor::fill_normal(t, rng, 0.0f, 1.0f);
  return t;
}

std::vector<float> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  runtime::Rng rng(seed);
  for (float& x : v) x = rng.normal(0.0f, 1.0f);
  return v;
}

// --- Graph construction contract ------------------------------------

TEST(Graph, RejectsMalformedTopologies) {
  // Forward references: inputs must already exist.
  {
    dnn::Network net;
    EXPECT_THROW(net.emplace_node<dnn::Dense>({NodeId{3}}, "d", 4, 4),
                 std::invalid_argument);
  }
  // Arity mismatch: Add wants as many edges as its arity.
  {
    dnn::Network net;
    NodeId d = net.emplace_node<dnn::Dense>({kGraphInput}, "d", 4, 4);
    EXPECT_THROW(net.emplace_node<dnn::Add>({d}, "add"),
                 std::invalid_argument);
  }
  // Dead non-head nodes are an error, not silent dead code.
  {
    dnn::Network net;
    NodeId d1 = net.emplace_node<dnn::Dense>({kGraphInput}, "d1", 4, 4);
    net.emplace_node<dnn::Dense>({d1}, "dead", 4, 2);
    NodeId d3 = net.emplace_node<dnn::Dense>({d1}, "d3", 4, 3);
    net.set_heads({d3});
    EXPECT_THROW(net.finalize(Shape{4}), std::logic_error);
  }
  // No mutation after finalize.
  {
    dnn::Network net;
    net.emplace_node<dnn::Dense>({kGraphInput}, "d", 4, 4);
    net.finalize(Shape{4});
    EXPECT_THROW(net.emplace_node<dnn::Dense>({NodeId{0}}, "late", 4, 2),
                 std::logic_error);
    EXPECT_THROW(net.set_heads({NodeId{0}}), std::logic_error);
  }
}

TEST(Graph, PublishesTopologyGauges) {
  core::ResidualTopologyConfig config;
  config.input_dhw = 4;
  config.width = 16;
  config.trunk = 8;
  dnn::Network net = core::build_residual_network(config, 11);
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.gauge("dnn/graph/nodes").value(),
            static_cast<double>(net.layer_count()));
  EXPECT_EQ(reg.gauge("dnn/graph/edges").value(),
            static_cast<double>(net.graph().edge_count()));
  EXPECT_EQ(reg.gauge("dnn/graph/heads").value(), 2.0);
}

// --- (a) Sequential lowering is bitwise plan-invariant ---------------

TEST(GraphSequential, TrainingBitwiseAcrossPlansAndThreads) {
  const core::TopologyConfig topology = core::cosmoflow_scaled(8);
  const Shape in_shape = core::input_shape(topology);
  const std::size_t out_n =
      static_cast<std::size_t>(topology.outputs);
  const int steps = 3;
  std::vector<Tensor> inputs;
  for (int s = 0; s < steps; ++s) {
    inputs.push_back(random_input(in_shape, 100 + s));
  }
  const std::vector<float> target = random_vector(out_n, 55);

  std::vector<float> ref_losses;
  std::vector<float> ref_params;
  bool first = true;
  for (const bool fuse : {true, false}) {
    for (const bool memplan : {true, false}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        dnn::Network net =
            core::build_network(topology, 42, fuse, memplan);
        dnn::ExecContext ctx = net.make_context(ExecMode::kTraining);
        runtime::ThreadPool pool(threads);
        optim::AdamState adam(net.param_arena().size(),
                              optim::AdamConfig{});
        std::vector<float> grads(net.param_arena().size());
        std::vector<float> losses;
        Tensor dloss(net.output_shape());
        for (int s = 0; s < steps; ++s) {
          const Tensor& pred = ctx.forward(inputs[s], pool);
          losses.push_back(dnn::mse_loss(
              {pred.data(), pred.size()}, target));
          dnn::mse_loss_grad({pred.data(), pred.size()}, target,
                             {dloss.data(), dloss.size()});
          ctx.zero_grads();
          ctx.backward(dloss, pool);
          ctx.copy_grads_to(grads);
          adam.step(net.param_arena(), grads, 1e-3);
        }
        std::vector<float> params(net.param_arena().size());
        net.copy_params_to(params);
        if (first) {
          ref_losses = losses;
          ref_params = params;
          first = false;
        } else {
          EXPECT_EQ(losses, ref_losses)
              << "fuse=" << fuse << " memplan=" << memplan
              << " threads=" << threads;
          EXPECT_EQ(params, ref_params)
              << "fuse=" << fuse << " memplan=" << memplan
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(GraphSequential, InferenceBitwiseAcrossPlansAndPrecisions) {
  const core::TopologyConfig topology = core::cosmoflow_scaled(8);
  const Tensor input = random_input(core::input_shape(topology), 9);
  for (const Precision precision :
       {Precision::kFp32, Precision::kBf16, Precision::kInt8Weights}) {
    std::vector<float> ref;
    bool first = true;
    for (const bool fuse : {true, false}) {
      for (const bool memplan : {true, false}) {
        for (const std::size_t threads :
             {std::size_t{1}, std::size_t{3}}) {
          dnn::Network net =
              core::build_network(topology, 42, fuse, memplan);
          net.prepare_inference_precision(precision);
          dnn::ExecContext ctx =
              net.make_context(ExecMode::kInference, precision);
          runtime::ThreadPool pool(threads);
          const std::vector<float> out =
              ctx.forward(input, pool).to_vector();
          if (first) {
            ref = out;
            first = false;
          } else {
            EXPECT_EQ(out, ref)
                << "precision=" << static_cast<int>(precision)
                << " fuse=" << fuse << " memplan=" << memplan
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

// --- (b) Edge-aware fusion and deterministic fan-in ------------------

TEST(GraphFusion, RefusesMultiConsumerAndPinnedProducers) {
  // d1 feeds both its activation and a second head directly: fusing
  // the activation into d1 would change what the second consumer reads.
  {
    dnn::Network net;
    net.set_fuse_eltwise(true);
    NodeId d1 = net.emplace_node<dnn::Dense>({kGraphInput}, "d1", 8, 8);
    NodeId a = net.emplace_node<dnn::LeakyRelu>({d1}, "a", 0.01f);
    NodeId h1 = net.emplace_node<dnn::Dense>({a}, "h1", 8, 3);
    NodeId h2 = net.emplace_node<dnn::Dense>({d1}, "h2", 8, 2);
    net.set_heads({h1, h2});
    net.finalize(Shape{8});
    EXPECT_EQ(net.fused_pairs(), 0u);
    EXPECT_EQ(net.layer_count(), 4u);
  }
  // d1 is itself a head: its pre-activation values are an output and
  // must survive, so the activation stays standalone.
  {
    dnn::Network net;
    net.set_fuse_eltwise(true);
    NodeId d1 = net.emplace_node<dnn::Dense>({kGraphInput}, "d1", 8, 8);
    NodeId a = net.emplace_node<dnn::LeakyRelu>({d1}, "a", 0.01f);
    NodeId h1 = net.emplace_node<dnn::Dense>({a}, "h1", 8, 3);
    net.set_heads({h1, d1});
    net.finalize(Shape{8});
    EXPECT_EQ(net.fused_pairs(), 0u);
  }
  // Sole-consumer activation on a non-head producer fuses as before.
  {
    dnn::Network net;
    net.set_fuse_eltwise(true);
    NodeId d1 = net.emplace_node<dnn::Dense>({kGraphInput}, "d1", 8, 8);
    NodeId a = net.emplace_node<dnn::LeakyRelu>({d1}, "a", 0.01f);
    NodeId h1 = net.emplace_node<dnn::Dense>({a}, "h1", 8, 3);
    net.set_heads({h1});
    net.finalize(Shape{8});
    EXPECT_EQ(net.fused_pairs(), 1u);
    EXPECT_EQ(net.layer_count(), 2u);
  }
}

TEST(GraphFanIn, DuplicateEdgesSumInOrder) {
  // Add(d, d) must read the same producer twice: forward is exactly
  // 2 * d(x) (exact in fp32), and d's gradient is twice the single-edge
  // contribution.
  dnn::Network twice;
  NodeId d = twice.emplace_node<dnn::Dense>({kGraphInput}, "d", 4, 4);
  twice.emplace_node<dnn::Add>({d, d}, "add");
  twice.finalize(Shape{4});

  dnn::Network once;
  once.emplace_node<dnn::Dense>({kGraphInput}, "d", 4, 4);
  once.finalize(Shape{4});

  const std::vector<float> params =
      random_vector(twice.param_arena().size(), 3);
  twice.set_params_from(params);
  once.set_params_from(params);

  const Tensor input = random_input(Shape{4}, 4);
  runtime::ThreadPool pool(1);
  dnn::ExecContext ctx2 = twice.make_context(ExecMode::kTraining);
  dnn::ExecContext ctx1 = once.make_context(ExecMode::kTraining);
  const Tensor& out2 = ctx2.forward(input, pool);
  const Tensor& out1 = ctx1.forward(input, pool);
  for (std::size_t i = 0; i < out2.size(); ++i) {
    EXPECT_EQ(out2.data()[i], 2.0f * out1.data()[i]) << i;
  }

  Tensor dloss(Shape{4});
  for (std::size_t i = 0; i < dloss.size(); ++i) {
    dloss.data()[i] = 1.0f + static_cast<float>(i);
  }
  ctx2.zero_grads();
  ctx2.backward(dloss, pool);
  ctx1.zero_grads();
  ctx1.backward(dloss, pool);
  std::vector<float> g2(twice.param_arena().size());
  std::vector<float> g1(once.param_arena().size());
  ctx2.copy_grads_to(g2);
  ctx1.copy_grads_to(g1);
  for (std::size_t i = 0; i < g2.size(); ++i) {
    EXPECT_EQ(g2[i], 2.0f * g1[i]) << i;
  }
}

TEST(GraphFanIn, AccumulationIsDeterministicAndPlanInvariant) {
  // Diamond: d0 fans out to two dense branches merged by Add — d0's
  // diff receives two contributions. Bitwise-identical gradients across
  // repeated runs, planner settings, and thread counts.
  const auto build = [](bool memplan) {
    dnn::Network net;
    net.set_memory_planning(memplan);
    NodeId d0 = net.emplace_node<dnn::Dense>({kGraphInput}, "d0", 4, 8);
    NodeId b1 = net.emplace_node<dnn::Dense>({d0}, "b1", 8, 8);
    NodeId b2 = net.emplace_node<dnn::Dense>({d0}, "b2", 8, 8);
    NodeId sum = net.emplace_node<dnn::Add>({b1, b2}, "add");
    net.emplace_node<dnn::Dense>({sum}, "out", 8, 3);
    net.finalize(Shape{4});
    return net;
  };
  dnn::Network probe = build(true);
  const std::vector<float> params =
      random_vector(probe.param_arena().size(), 17);
  const Tensor input = random_input(Shape{4}, 18);
  const std::vector<float> dloss_v = random_vector(3, 19);

  std::vector<float> ref;
  bool first = true;
  for (const bool memplan : {true, false}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        dnn::Network net = build(memplan);
        net.set_params_from(params);
        dnn::ExecContext ctx = net.make_context(ExecMode::kTraining);
        runtime::ThreadPool pool(threads);
        ctx.forward(input, pool);
        Tensor dloss(Shape{3});
        std::copy(dloss_v.begin(), dloss_v.end(), dloss.data());
        ctx.zero_grads();
        ctx.backward(dloss, pool);
        std::vector<float> grads(net.param_arena().size());
        ctx.copy_grads_to(grads);
        if (first) {
          ref = grads;
          first = false;
        } else {
          EXPECT_EQ(grads, ref) << "memplan=" << memplan
                                << " threads=" << threads
                                << " repeat=" << repeat;
        }
      }
    }
  }
}

// --- (c) Residual multi-head topology: gradcheck, train, serve -------

core::ResidualTopologyConfig tiny_residual(std::int64_t dhw) {
  core::ResidualTopologyConfig config;
  config.input_dhw = dhw;
  config.width = 16;
  config.trunk = 8;
  config.head_outputs = {2, 1};
  return config;
}

TEST(GraphResidual, GradientMatchesFiniteDifferences) {
  const core::ResidualTopologyConfig config = tiny_residual(4);
  dnn::Network net = core::build_residual_network(config, 7);
  const Tensor input = random_input(core::input_shape(config), 23);
  const std::size_t out_n =
      static_cast<std::size_t>(net.output_shape().numel());
  const std::vector<float> w = random_vector(out_n, 29);
  runtime::ThreadPool pool(1);

  // L(theta) = sum_k w_k out_k(theta, x), accumulated in double.
  const auto loss = [&]() {
    dnn::ExecContext ctx = net.make_context(ExecMode::kInference);
    const Tensor& out = ctx.forward(input, pool);
    double acc = 0.0;
    for (std::size_t k = 0; k < out_n; ++k) {
      acc += static_cast<double>(w[k]) *
             static_cast<double>(out.data()[k]);
    }
    return acc;
  };

  dnn::ExecContext ctx = net.make_context(ExecMode::kTraining);
  ctx.forward(input, pool);
  Tensor dloss(net.output_shape());
  std::copy(w.begin(), w.end(), dloss.data());
  ctx.zero_grads();
  ctx.backward(dloss, pool);
  std::vector<float> grads(net.param_arena().size());
  ctx.copy_grads_to(grads);

  std::span<float> params = net.param_arena();
  const std::size_t stride = params.size() / 25 + 1;
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double up = loss();
    params[i] = saved - eps;
    const double down = loss();
    params[i] = saved;
    const double fd = (up - down) / (2.0 * static_cast<double>(eps));
    const double g = static_cast<double>(grads[i]);
    const double tol = 1e-3 + 0.05 * std::max(std::abs(g), std::abs(fd));
    EXPECT_NEAR(g, fd, tol) << "param " << i;
  }
}

TEST(GraphResidual, TrainsAndServes) {
  const core::ResidualTopologyConfig config = tiny_residual(8);
  auto net = std::make_shared<dnn::Network>(
      core::build_residual_network(config, 13));
  runtime::ThreadPool pool(2);
  const std::size_t out_n =
      static_cast<std::size_t>(net->output_shape().numel());

  // A small regression task: map 4 fixed volumes to fixed multi-head
  // targets; the loss must drop under Adam.
  std::vector<Tensor> inputs;
  std::vector<std::vector<float>> targets;
  for (int s = 0; s < 4; ++s) {
    inputs.push_back(random_input(net->input_shape(), 200 + s));
    targets.push_back(random_vector(out_n, 300 + s));
  }
  dnn::ExecContext ctx = net->make_context(ExecMode::kTraining);
  optim::AdamState adam(net->param_arena().size(), optim::AdamConfig{});
  std::vector<float> grads(net->param_arena().size());
  Tensor dloss(net->output_shape());
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 40; ++epoch) {
    float epoch_loss = 0.0f;
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      const Tensor& pred = ctx.forward(inputs[s], pool);
      epoch_loss +=
          dnn::mse_loss({pred.data(), pred.size()}, targets[s]);
      dnn::mse_loss_grad({pred.data(), pred.size()}, targets[s],
                         {dloss.data(), dloss.size()});
      ctx.zero_grads();
      ctx.backward(dloss, pool);
      ctx.copy_grads_to(grads);
      adam.step(net->param_arena(), grads, 1e-2);
    }
    if (epoch == 0) first_loss = epoch_loss;
    last_loss = epoch_loss;
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);

  // Serve the trained residual network through cf::serve and check the
  // batched results against a fresh single-stream reference.
  std::vector<std::vector<float>> expected;
  {
    dnn::ExecContext ref = net->make_context(ExecMode::kInference);
    runtime::ThreadPool serial(1);
    for (const Tensor& input : inputs) {
      expected.push_back(ref.forward(input, serial).to_vector());
    }
  }
  serve::ServerConfig server_config;
  server_config.workers = 2;
  server_config.max_batch = 2;
  server_config.max_delay_seconds = 1e-3;
  server_config.metric_prefix = "graph_serve_test";
  serve::Server server(std::shared_ptr<const dnn::Network>(net),
                       server_config);
  std::vector<std::future<serve::InferenceResult>> futures;
  for (const Tensor& input : inputs) {
    std::future<serve::InferenceResult> future;
    ASSERT_EQ(server.submit(input.clone(), &future),
              serve::SubmitStatus::kAccepted);
    futures.push_back(std::move(future));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::InferenceResult result = futures[i].get();
    EXPECT_EQ(tensor::max_abs_diff(result.output, expected[i]), 0.0f)
        << "request " << i;
  }
  server.shutdown();
}

// --- (d) Per-shape inference contexts --------------------------------

TEST(GraphShapeView, AgreesWithDedicatedSameShapeNetwork) {
  const core::ResidualTopologyConfig parent_cfg = tiny_residual(8);
  dnn::Network parent = core::build_residual_network(parent_cfg, 31);

  // Same seed + same layer/stream order => the dedicated 4^3 network
  // holds bitwise-identical weights; only the planned shapes differ.
  const core::ResidualTopologyConfig small_cfg = tiny_residual(4);
  dnn::Network dedicated = core::build_residual_network(small_cfg, 31);

  std::unique_ptr<dnn::Network> view =
      parent.make_shape_view(core::input_shape(small_cfg));
  EXPECT_TRUE(view->is_shape_view());
  EXPECT_EQ(view->output_shape(), dedicated.output_shape());

  const Tensor input = random_input(core::input_shape(small_cfg), 41);
  runtime::ThreadPool pool(1);
  dnn::ExecContext view_ctx = view->make_context(ExecMode::kInference);
  dnn::ExecContext ded_ctx = dedicated.make_context(ExecMode::kInference);
  EXPECT_EQ(view_ctx.forward(input, pool).to_vector(),
            ded_ctx.forward(input, pool).to_vector());

  // A view at the parent's own shape reproduces the parent bitwise.
  std::unique_ptr<dnn::Network> same =
      parent.make_shape_view(parent.input_shape());
  const Tensor big = random_input(parent.input_shape(), 43);
  dnn::ExecContext same_ctx = same->make_context(ExecMode::kInference);
  dnn::ExecContext parent_ctx = parent.make_context(ExecMode::kInference);
  EXPECT_EQ(same_ctx.forward(big, pool).to_vector(),
            parent_ctx.forward(big, pool).to_vector());

  // Weight sharing is by reference: a parent update is visible through
  // the view without any re-sync call.
  std::vector<float> params(parent.param_arena().size());
  parent.copy_params_to(params);
  for (float& p : params) p *= 0.5f;
  parent.set_params_from(params);
  dnn::Network fresh = core::build_residual_network(small_cfg, 31);
  fresh.set_params_from(params);
  dnn::ExecContext fresh_ctx = fresh.make_context(ExecMode::kInference);
  dnn::ExecContext view_ctx2 = view->make_context(ExecMode::kInference);
  EXPECT_EQ(view_ctx2.forward(input, pool).to_vector(),
            fresh_ctx.forward(input, pool).to_vector());
}

TEST(GraphShapeView, ViewsAreInferenceOnly) {
  dnn::Network parent =
      core::build_residual_network(tiny_residual(8), 47);
  std::unique_ptr<dnn::Network> view =
      parent.make_shape_view(Shape{1, 4, 4, 4});
  EXPECT_THROW(view->make_context(ExecMode::kTraining), std::logic_error);
  EXPECT_THROW(view->param_arena(), std::logic_error);
  std::vector<float> buf(static_cast<std::size_t>(view->param_count()));
  EXPECT_THROW(view->copy_params_to(buf), std::logic_error);
  EXPECT_THROW(view->set_params_from(buf), std::logic_error);
  EXPECT_THROW(view->make_shape_view(Shape{1, 4, 4, 4}),
               std::logic_error);
  EXPECT_THROW(view->prepare_inference_precision(Precision::kBf16),
               std::logic_error);
}

TEST(GraphShapeView, FixedFeatureDenseHeadIsRejected) {
  // Flatten -> Dense bakes the voxel count into the weight shape; a
  // view at another input size must throw, not mis-plan.
  dnn::Network net =
      core::build_network(core::cosmoflow_scaled(8), 3);
  EXPECT_THROW(net.make_shape_view(Shape{1, 16, 16, 16}),
               std::invalid_argument);
}

TEST(GraphShapeView, ConcurrentPerShapeInference) {
  // TSan leg: one parent, two shape views, three threads hammering
  // inference concurrently over the shared weight arena.
  dnn::Network parent =
      core::build_residual_network(tiny_residual(8), 53);
  std::unique_ptr<dnn::Network> small =
      parent.make_shape_view(Shape{1, 4, 4, 4});
  std::unique_ptr<dnn::Network> large =
      parent.make_shape_view(Shape{1, 12, 12, 12});

  const Tensor in8 = random_input(parent.input_shape(), 61);
  const Tensor in4 = random_input(Shape{1, 4, 4, 4}, 62);
  const Tensor in12 = random_input(Shape{1, 12, 12, 12}, 63);
  const auto reference = [](const dnn::Network& net, const Tensor& in) {
    dnn::ExecContext ctx = net.make_context(ExecMode::kInference);
    runtime::ThreadPool pool(1);
    return ctx.forward(in, pool).to_vector();
  };
  const std::vector<float> ref8 = reference(parent, in8);
  const std::vector<float> ref4 = reference(*small, in4);
  const std::vector<float> ref12 = reference(*large, in12);

  const auto hammer = [](const dnn::Network& net, const Tensor& in,
                         const std::vector<float>& expect) {
    dnn::ExecContext ctx = net.make_context(ExecMode::kInference);
    runtime::ThreadPool pool(1);
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(ctx.forward(in, pool).to_vector(), expect);
    }
  };
  std::thread t1(hammer, std::cref(parent), std::cref(in8),
                 std::cref(ref8));
  std::thread t2(hammer, std::cref(*small), std::cref(in4),
                 std::cref(ref4));
  std::thread t3(hammer, std::cref(*large), std::cref(in12),
                 std::cref(ref12));
  t1.join();
  t2.join();
  t3.join();
}

// --- Multi-head output layout ---------------------------------------

TEST(GraphMultiHead, OutputConcatenatesHeadsInOrder) {
  // The same node set with a single head selected must reproduce the
  // matching slice of the multi-head output (identical weights: heads
  // only change what is returned, not what is planned or initialized).
  const core::ResidualTopologyConfig config = tiny_residual(4);
  dnn::Network multi = core::build_residual_network(config, 71);
  ASSERT_EQ(multi.head_count(), 2u);
  EXPECT_EQ(multi.output_shape().numel(), 3);
  EXPECT_EQ(multi.head_offset(0), 0u);
  EXPECT_EQ(multi.head_offset(1), 2u);

  const Tensor input = random_input(core::input_shape(config), 73);
  runtime::ThreadPool pool(1);
  dnn::ExecContext ctx = multi.make_context(ExecMode::kInference);
  const std::vector<float> out = ctx.forward(input, pool).to_vector();
  ASSERT_EQ(out.size(), 3u);

  // Dropping the second head leaves every shared layer's RNG stream
  // (and so its weights) untouched, and the single-head network returns
  // its head activation directly — it must equal slice [0, 2) of the
  // concatenated multi-head output bitwise.
  core::ResidualTopologyConfig single_cfg = config;
  single_cfg.head_outputs = {config.head_outputs[0]};
  dnn::Network single = core::build_residual_network(single_cfg, 71);
  dnn::ExecContext sctx = single.make_context(ExecMode::kInference);
  const std::vector<float> head_a = sctx.forward(input, pool).to_vector();
  ASSERT_EQ(head_a.size(), 2u);
  EXPECT_EQ(head_a[0], out[0]);
  EXPECT_EQ(head_a[1], out[1]);
}

}  // namespace
}  // namespace cf
