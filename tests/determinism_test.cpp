// Cross-cutting determinism properties.
//
// Synchronous data-parallel training is only correct if every replica
// applies bit-identical updates, which requires every kernel in the
// chain — convolution, pooling, reduction, optimizer — to be
// deterministic regardless of the thread count it runs with. These
// tests pin that invariant at each level of the stack.
#include <gtest/gtest.h>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "dnn/conv3d.hpp"
#include "runtime/rng.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using tensor::Shape;
using tensor::Tensor;

class ConvThreadInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ConvThreadInvariance, ForwardAndBackwardBitIdentical) {
  const int threads = GetParam();
  const dnn::Conv3dConfig config{16, 32, 3, 1, dnn::Padding::kSame};

  const auto run = [&](int nthreads) {
    dnn::Conv3d conv("conv", config);
    conv.plan(Shape{1, 6, 6, 6, 16});
    runtime::Rng rng(3);
    conv.init_he(rng);
    runtime::ThreadPool pool(static_cast<std::size_t>(nthreads));
    Tensor src(conv.input_shape());
    tensor::fill_normal(src, rng, 0.0f, 1.0f);
    Tensor dst(conv.output_shape());
    conv.forward(src, dst, pool);
    Tensor ddst(conv.output_shape());
    tensor::fill_normal(ddst, rng, 0.0f, 1.0f);
    Tensor dsrc(conv.input_shape());
    conv.backward(src, ddst, dsrc, true, pool);
    std::vector<float> all = dst.to_vector();
    const auto dw = conv.plain_weight_grads().to_vector();
    all.insert(all.end(), dw.begin(), dw.end());
    const auto ds = dsrc.to_vector();
    all.insert(all.end(), ds.begin(), ds.end());
    return all;
  };

  const auto serial = run(1);
  const auto threaded = run(threads);
  ASSERT_EQ(serial.size(), threaded.size());
  EXPECT_EQ(tensor::max_abs_diff(serial, threaded), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Threads, ConvThreadInvariance,
                         ::testing::Values(2, 3, 5, 8));

TEST(NetworkThreadInvariance, FullForwardBitIdentical) {
  const auto run = [&](int nthreads) {
    dnn::Network net = core::build_network(core::cosmoflow_scaled(16), 9);
    dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kTraining);
    runtime::ThreadPool pool(static_cast<std::size_t>(nthreads));
    Tensor input(net.input_shape());
    runtime::Rng rng(10);
    tensor::fill_normal(input, rng, 0.0f, 1.0f);
    return ctx.forward(input, pool).to_vector();
  };
  EXPECT_EQ(tensor::max_abs_diff(run(1), run(4)), 0.0f);
}

TEST(TrainerDeterminism, IoThreadCountDoesNotChangeTraining) {
  // Prefetch parallelism must not change *what* is trained on, only
  // when it arrives.
  const auto run = [&](std::size_t io_threads) {
    runtime::ThreadPool pool;
    core::DatasetGenConfig gen;
    gen.simulations = 6;
    gen.sim.grid = {16, 64.0};
    gen.sim.voxels = 16;
    gen.seed = 20;
    core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
    data::InMemorySource train(std::move(dataset.train));
    data::InMemorySource val(std::move(dataset.val));
    core::TrainerConfig config;
    config.nranks = 2;
    config.epochs = 2;
    config.pipeline.io_threads = io_threads;
    core::Trainer trainer(core::cosmoflow_scaled(8), train, val, config);
    return trainer.run().back().train_loss;
  };
  EXPECT_EQ(run(1), run(3));
}

TEST(TrainerDeterminism, RankCountChangesTrajectoryButNotValidity) {
  // Different rank counts legitimately produce different trajectories
  // (different global batch); both must stay finite and reproducible.
  const auto run = [&](int ranks) {
    runtime::ThreadPool pool;
    core::DatasetGenConfig gen;
    gen.simulations = 6;
    gen.sim.grid = {16, 64.0};
    gen.sim.voxels = 16;
    gen.seed = 21;
    core::GeneratedDataset dataset = core::generate_dataset(gen, pool);
    data::InMemorySource train(std::move(dataset.train));
    data::InMemorySource val(std::move(dataset.val));
    core::TrainerConfig config;
    config.nranks = ranks;
    config.epochs = 2;
    core::Trainer trainer(core::cosmoflow_scaled(8), train, val, config);
    return trainer.run().back().train_loss;
  };
  const double two_a = run(2);
  const double two_b = run(2);
  const double four = run(4);
  EXPECT_EQ(two_a, two_b);
  EXPECT_TRUE(std::isfinite(four));
  EXPECT_NE(two_a, four);
}

TEST(DatasetDeterminism, GenerationIsThreadCountInvariant) {
  const auto run = [&](std::size_t threads) {
    runtime::ThreadPool pool(threads);
    core::DatasetGenConfig gen;
    gen.simulations = 3;
    gen.sim.grid = {16, 64.0};
    gen.sim.voxels = 16;
    gen.seed = 22;
    return core::generate_dataset(gen, pool);
  };
  const auto a = run(1);
  const auto b = run(4);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(tensor::max_abs_diff(a.train[i].volume.values(),
                                   b.train[i].volume.values()),
              0.0f)
        << "sample " << i;
  }
}

}  // namespace
}  // namespace cf
