// Tests for the §III-B optimizer stack: polynomial decay schedule,
// Adam bias correction, LARC local-rate computation and clipping.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "optim/adam.hpp"
#include "optim/larc_adam.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::optim {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(PolynomialDecay, PaperEndpoints) {
  // eta_0 = 2e-3, eta_min = 1e-4 (§III-B).
  const PolynomialDecay schedule(2e-3, 1e-4, 1000);
  EXPECT_DOUBLE_EQ(schedule.lr(0), 2e-3);
  EXPECT_DOUBLE_EQ(schedule.lr(1000), 1e-4);
  EXPECT_DOUBLE_EQ(schedule.lr(5000), 1e-4);  // clamped
  // Halfway: linear (power = 1).
  EXPECT_NEAR(schedule.lr(500), (2e-3 - 1e-4) * 0.5 + 1e-4, 1e-12);
}

TEST(PolynomialDecay, IsMonotonicallyNonIncreasing) {
  const PolynomialDecay schedule(1e-2, 1e-5, 137);
  double previous = schedule.lr(0);
  for (std::int64_t t = 1; t < 200; ++t) {
    const double current = schedule.lr(t);
    EXPECT_LE(current, previous);
    previous = current;
  }
}

TEST(PolynomialDecay, RejectsBadConfig) {
  EXPECT_THROW(PolynomialDecay(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(PolynomialDecay(1e-3, 2e-3, 10), std::invalid_argument);
  EXPECT_THROW(PolynomialDecay(1e-3, 1e-4, 0), std::invalid_argument);
  const PolynomialDecay ok(1e-3, 1e-4, 10);
  EXPECT_THROW(ok.lr(-1), std::invalid_argument);
}

TEST(Adam, FirstStepMatchesClosedForm) {
  // With bias correction, the first Adam step moves each parameter by
  // lr * g / (|g| + eps') independent of the gradient magnitude.
  AdamState state(3, AdamConfig{});
  std::vector<float> params{1.0f, -2.0f, 0.5f};
  const std::vector<float> grads{0.1f, -100.0f, 0.0001f};
  state.step(params, grads, 0.01);
  EXPECT_NEAR(params[0], 1.0f - 0.01f, 1e-5);
  EXPECT_NEAR(params[1], -2.0f + 0.01f, 1e-5);
  EXPECT_NEAR(params[2], 0.5f - 0.01f, 1e-4);
}

TEST(Adam, MatchesScalarReferenceImplementation) {
  const AdamConfig config{};
  AdamState state(1, config);
  std::vector<float> param{0.3f};
  double m = 0.0;
  double v = 0.0;
  double ref = 0.3;
  const double lr = 2e-3;
  runtime::Rng rng(55);
  for (int t = 1; t <= 50; ++t) {
    const float g = rng.normal();
    m = config.beta1 * m + (1 - config.beta1) * g;
    v = config.beta2 * v + (1 - config.beta2) * g * g;
    const double m_hat = m / (1 - std::pow(config.beta1, t));
    const double v_hat = v / (1 - std::pow(config.beta2, t));
    ref -= lr * m_hat / (std::sqrt(v_hat) + config.epsilon);
    const std::vector<float> grad{g};
    state.step(param, grad, lr);
    ASSERT_NEAR(param[0], ref, 1e-4) << "step " << t;
  }
}

TEST(Adam, RestoreRoundTrip) {
  AdamState state(2, AdamConfig{});
  std::vector<float> params{1.0f, 2.0f};
  const std::vector<float> grads{0.5f, -0.5f};
  state.step(params, grads, 0.01);
  state.step(params, grads, 0.01);

  AdamState restored(2, AdamConfig{});
  restored.restore(state.first_moment(), state.second_moment(),
                   state.steps_taken());
  std::vector<float> a{params};
  std::vector<float> b{params};
  state.step(a, grads, 0.01);
  restored.step(b, grads, 0.01);
  EXPECT_FLOAT_EQ(a[0], b[0]);
  EXPECT_FLOAT_EQ(a[1], b[1]);
}

TEST(Adam, RejectsBadConfigAndSizes) {
  EXPECT_THROW(AdamState(2, AdamConfig{1.0, 0.999, 1e-8}),
               std::invalid_argument);
  EXPECT_THROW(AdamState(2, AdamConfig{0.9, 0.999, 0.0}),
               std::invalid_argument);
  AdamState state(2, AdamConfig{});
  std::vector<float> params{1.0f};
  const std::vector<float> grads{0.5f};
  EXPECT_THROW(state.step(params, grads, 0.01), std::invalid_argument);
}

class LarcFixture : public ::testing::Test {
 protected:
  LarcFixture()
      : weights_(Shape{4}), grads_(Shape{4}) {
    params_.push_back({"w", &weights_, &grads_});
  }

  std::unique_ptr<LarcAdam> make(LarcConfig larc, double lr = 1e-3) {
    return std::make_unique<LarcAdam>(
        params_, AdamConfig{}, larc, std::make_shared<ConstantLr>(lr));
  }

  Tensor weights_;
  Tensor grads_;
  std::vector<dnn::ParamView> params_;
};

TEST_F(LarcFixture, LocalRateFollowsNormRatio) {
  weights_.fill(2.0f);  // ||w|| = 4
  grads_.fill(1.0f);    // ||g|| = 2
  auto opt = make(LarcConfig{});
  opt->step();
  // eta* = 0.002 * 4 / 2 = 0.004 < 1, no clip.
  EXPECT_NEAR(opt->last_local_rates()[0], 0.004, 1e-9);
}

TEST_F(LarcFixture, ClipsAtOne) {
  weights_.fill(1000.0f);
  grads_.fill(0.001f);  // huge norm ratio
  auto opt = make(LarcConfig{});
  opt->step();
  EXPECT_DOUBLE_EQ(opt->last_local_rates()[0], 1.0);

  // Without the clip (plain LARS) the rate exceeds 1.
  weights_.fill(1000.0f);
  grads_.fill(0.001f);
  LarcConfig no_clip;
  no_clip.clip = false;
  auto lars = make(no_clip);
  lars->step();
  EXPECT_GT(lars->last_local_rates()[0], 1.0);
}

TEST_F(LarcFixture, FallbackRateWhenNormsVanish) {
  weights_.zero();
  grads_.fill(1.0f);
  auto opt = make(LarcConfig{});
  opt->step();
  EXPECT_DOUBLE_EQ(opt->last_local_rates()[0], 6.25e-5);

  weights_.fill(1.0f);
  grads_.zero();
  auto opt2 = make(LarcConfig{});
  opt2->step();
  EXPECT_DOUBLE_EQ(opt2->last_local_rates()[0], 6.25e-5);
}

TEST_F(LarcFixture, UpdateEqualsAdamOnScaledGradient) {
  weights_.fill(2.0f);
  grads_.fill(1.0f);
  auto opt = make(LarcConfig{}, 1e-3);
  opt->step();

  // Reproduce manually: g* = 0.004 * g, then Adam(lr = 1e-3) step 1
  // moves by lr * sign(g) (bias-corrected), independent of |g*|.
  std::vector<float> expected(4, 2.0f);
  AdamState adam(4, AdamConfig{});
  const std::vector<float> scaled(4, 0.004f);
  adam.step(expected, scaled, 1e-3);
  EXPECT_TRUE(tensor::allclose(weights_.values(), expected, 1e-6f, 1e-7f));
}

TEST_F(LarcFixture, UsesScheduleLr) {
  weights_.fill(2.0f);
  grads_.fill(1.0f);
  auto schedule = std::make_shared<PolynomialDecay>(2e-3, 1e-4, 10);
  LarcAdam opt(params_, AdamConfig{}, LarcConfig{}, schedule);
  opt.step();
  EXPECT_DOUBLE_EQ(opt.last_lr(), 2e-3);
  opt.step();
  EXPECT_NEAR(opt.last_lr(), (2e-3 - 1e-4) * 0.9 + 1e-4, 1e-12);
}

TEST_F(LarcFixture, RejectsBadConstruction) {
  EXPECT_THROW(LarcAdam({}, AdamConfig{}, LarcConfig{},
                        std::make_shared<ConstantLr>(1e-3)),
               std::invalid_argument);
  EXPECT_THROW(LarcAdam(params_, AdamConfig{}, LarcConfig{}, nullptr),
               std::invalid_argument);
  LarcConfig bad;
  bad.trust_coefficient = 0.0;
  EXPECT_THROW(
      LarcAdam(params_, AdamConfig{}, bad,
               std::make_shared<ConstantLr>(1e-3)),
      std::invalid_argument);
}

TEST(SgdMomentum, PlainSgdStep) {
  Tensor w(Shape{2});
  w.fill(1.0f);
  Tensor g(Shape{2});
  g.fill(0.5f);
  std::vector<dnn::ParamView> params{{"w", &w, &g}};
  SgdMomentum opt(params, 0.0, std::make_shared<ConstantLr>(0.1));
  opt.step();
  EXPECT_FLOAT_EQ(w[0], 1.0f - 0.05f);
}

TEST(SgdMomentum, MomentumAccumulates) {
  Tensor w(Shape{1});
  Tensor g(Shape{1});
  g.fill(1.0f);
  std::vector<dnn::ParamView> params{{"w", &w, &g}};
  SgdMomentum opt(params, 0.9, std::make_shared<ConstantLr>(1.0));
  opt.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(w[0], -1.0f);
  opt.step();  // v = 1.9, w = -2.9
  EXPECT_FLOAT_EQ(w[0], -2.9f);
}

// Property: on a convex quadratic, Adam+LARC with the polynomial
// schedule converges toward the minimum.
TEST(LarcAdamIntegration, MinimizesQuadratic) {
  Tensor w(Shape{8});
  Tensor g(Shape{8});
  runtime::Rng rng(77);
  tensor::fill_normal(w, rng, 0.0f, 2.0f);
  std::vector<dnn::ParamView> params{{"w", &w, &g}};
  LarcAdam opt(params, AdamConfig{},
               LarcConfig{}, std::make_shared<PolynomialDecay>(0.05, 1e-3,
                                                               2000));
  const auto loss = [&] { return tensor::dot(w.values(), w.values()); };
  const double initial = loss();
  for (int t = 0; t < 2000; ++t) {
    for (std::size_t i = 0; i < w.size(); ++i) g[i] = 2.0f * w[i];
    opt.step();
  }
  EXPECT_LT(loss(), 1e-2 * initial);
}

}  // namespace
}  // namespace cf::optim
