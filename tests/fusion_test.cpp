// The load-bearing property of the conv/dense → LeakyReLU epilogue
// fusion: the fused graph must be *bitwise identical* to the unfused
// one. The epilogue applies the same `v > 0 ? v : slope*v` expression
// to the same accumulator values the standalone layer would have read,
// and the backward mask keys off the sign of the fused output — which
// equals the pre-activation sign for slope in [0, 1) — so fwd, bwd and
// whole training trajectories may not differ in a single bit.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "dnn/activations.hpp"
#include "dnn/conv3d.hpp"
#include "dnn/dense.hpp"
#include "dnn/network.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr float kSlope = 0.01f;

// --- Layer-level: one fused Conv3d vs conv + standalone LeakyRelu. ---

struct FusedConvCase {
  std::int64_t ic, oc, dhw, kernel, stride;
};

class FusedConvVsUnfused : public ::testing::TestWithParam<FusedConvCase> {};

TEST_P(FusedConvVsUnfused, ForwardAndBackwardBitIdentical) {
  const FusedConvCase& c = GetParam();
  const dnn::Conv3dConfig config{c.ic, c.oc, c.kernel, c.stride,
                                 dnn::Padding::kSame};
  dnn::Conv3d plain("conv", config);
  dnn::Conv3d fused("conv", config);
  ASSERT_TRUE(fused.fuse_leaky_relu(kSlope));
  ASSERT_TRUE(fused.fused());
  // Out-of-range slopes must be rejected (sign equivalence breaks).
  dnn::Conv3d reject("conv", config);
  EXPECT_FALSE(reject.fuse_leaky_relu(1.0f));
  EXPECT_FALSE(reject.fuse_leaky_relu(-0.1f));

  runtime::Rng rng(42, static_cast<std::uint64_t>(c.ic * 100 + c.oc));
  Tensor plain_src(Shape{c.ic, c.dhw, c.dhw, c.dhw});
  tensor::fill_normal(plain_src, rng, 0.0f, 1.0f);
  Tensor weights(Shape{c.oc, c.ic, c.kernel, c.kernel, c.kernel});
  tensor::fill_normal(weights, rng, 0.0f, 0.5f);
  Tensor bias(Shape{c.oc});
  tensor::fill_normal(bias, rng, 0.0f, 0.1f);

  const Shape in_shape = plain.input_is_plain()
                             ? plain_src.shape()
                             : Shape{c.ic / 16, c.dhw, c.dhw, c.dhw, 16};
  plain.plan(in_shape);
  fused.plan(in_shape);
  plain.set_plain_weights(weights, bias);
  fused.set_plain_weights(weights, bias);

  dnn::LeakyRelu act("act", kSlope);
  act.plan(plain.output_shape());

  runtime::ThreadPool pool(3);
  const Tensor src = plain.input_is_plain()
                         ? plain_src.clone()
                         : tensor::to_blocked_activation(plain_src);

  Tensor conv_out(plain.output_shape());
  Tensor act_out(plain.output_shape());
  Tensor fused_out(fused.output_shape());
  plain.forward(src, conv_out, pool);
  act.forward(conv_out, act_out, pool);
  fused.forward(src, fused_out, pool);
  EXPECT_EQ(tensor::max_abs_diff(fused_out.values(), act_out.values()),
            0.0f);

  Tensor ddst(plain.output_shape());
  tensor::fill_normal(ddst, rng, 0.0f, 1.0f);

  // Unfused chain: activation backward, then the conv backward.
  Tensor dact(plain.output_shape());
  act.backward(conv_out, ddst, dact, /*need_dsrc=*/true, pool);
  Tensor dsrc_plain(plain.input_shape());
  plain.backward(src, dact, dsrc_plain, /*need_dsrc=*/true, pool);

  // Fused: one call, the mask recovered from the forward output.
  Tensor dsrc_fused(fused.input_shape());
  fused.backward(src, fused_out, ddst, dsrc_fused, /*need_dsrc=*/true,
                 pool);

  EXPECT_EQ(tensor::max_abs_diff(dsrc_fused.values(), dsrc_plain.values()),
            0.0f);
  const Tensor dw_plain = plain.plain_weight_grads();
  const Tensor dw_fused = fused.plain_weight_grads();
  EXPECT_EQ(tensor::max_abs_diff(dw_fused.values(), dw_plain.values()),
            0.0f);
  EXPECT_EQ(tensor::max_abs_diff(fused.bias_grad().values(),
                                 plain.bias_grad().values()),
            0.0f);

  // A fused layer cannot run the dst-less backward overload.
  Tensor dsrc(fused.input_shape());
  EXPECT_THROW(fused.backward(src, ddst, dsrc, true, pool),
               std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedConvVsUnfused,
    ::testing::Values(FusedConvCase{1, 16, 8, 3, 1},   // plain-input path
                      FusedConvCase{16, 32, 8, 3, 1},  // blocked path
                      FusedConvCase{32, 64, 8, 3, 2},  // strided
                      FusedConvCase{16, 32, 7, 4, 1}), // odd size, even k
    [](const ::testing::TestParamInfo<FusedConvCase>& info) {
      const FusedConvCase& c = info.param;
      return "ic" + std::to_string(c.ic) + "_oc" + std::to_string(c.oc) +
             "_s" + std::to_string(c.dhw) + "_k" +
             std::to_string(c.kernel) + "_st" + std::to_string(c.stride);
    });

TEST(FusedDenseVsUnfused, ForwardAndBackwardBitIdentical) {
  const std::vector<std::pair<std::int64_t, std::int64_t>> shapes{
      {512, 128}, {128, 32}, {33, 7}};
  for (const auto& [in, out] : shapes) {
    dnn::Dense plain("fc", in, out);
    dnn::Dense fused("fc", in, out);
    ASSERT_TRUE(fused.fuse_leaky_relu(kSlope));
    plain.plan(Shape{in});
    fused.plan(Shape{in});
    runtime::Rng rng(7, static_cast<std::uint64_t>(in));
    plain.init_xavier(rng);
    fused.weights() = plain.weights().clone();
    fused.bias() = plain.bias().clone();

    runtime::ThreadPool pool(3);
    Tensor src(Shape{in});
    tensor::fill_normal(src, rng, 0.0f, 1.0f);

    dnn::LeakyRelu act("act", kSlope);
    act.plan(Shape{out});
    Tensor fc_out{Shape{out}}, act_out{Shape{out}}, fused_out{Shape{out}};
    plain.forward(src, fc_out, pool);
    act.forward(fc_out, act_out, pool);
    fused.forward(src, fused_out, pool);
    EXPECT_EQ(tensor::max_abs_diff(fused_out.values(), act_out.values()),
              0.0f);

    Tensor ddst(Shape{out});
    tensor::fill_normal(ddst, rng, 0.0f, 1.0f);
    Tensor dact{Shape{out}}, dsrc_plain{Shape{in}}, dsrc_fused{Shape{in}};
    act.backward(fc_out, ddst, dact, true, pool);
    plain.backward(src, dact, dsrc_plain, true, pool);
    fused.backward(src, fused_out, ddst, dsrc_fused, true, pool);

    EXPECT_EQ(
        tensor::max_abs_diff(dsrc_fused.values(), dsrc_plain.values()),
        0.0f);
    auto plain_params = plain.params();
    auto fused_params = fused.params();
    ASSERT_EQ(plain_params.size(), fused_params.size());
    for (std::size_t p = 0; p < plain_params.size(); ++p) {
      EXPECT_EQ(tensor::max_abs_diff(fused_params[p].grad->values(),
                                     plain_params[p].grad->values()),
                0.0f)
          << "param " << plain_params[p].name;
    }
    EXPECT_THROW(fused.backward(src, ddst, dsrc_fused, true, pool),
                 std::logic_error);
  }
}

// --- Network-level: the fusion pass collapses pairs and preserves
// every bit of the forward/backward results. ---

TEST(FusionPass, CollapsesConvAndDensePairsAndPreservesBits) {
  for (const std::int64_t dhw : {std::int64_t{16}, std::int64_t{32}}) {
    const core::TopologyConfig topo = core::cosmoflow_scaled(dhw);
    dnn::Network fused = core::build_network(topo, /*seed=*/9);
    dnn::Network plain =
        core::build_network(topo, /*seed=*/9, /*fuse_eltwise=*/false);

    // One absorbed LeakyRelu per conv and per hidden dense; the output
    // layer keeps no activation.
    const std::size_t pairs =
        topo.convs.size() + topo.dense_hidden.size();
    EXPECT_EQ(fused.fused_pairs(), pairs);
    EXPECT_EQ(plain.fused_pairs(), 0u);
    EXPECT_EQ(fused.layer_count() + pairs, plain.layer_count());
    ASSERT_EQ(fused.param_count(), plain.param_count());

    runtime::ThreadPool pool(4);
    runtime::Rng rng(11, static_cast<std::uint64_t>(dhw));
    Tensor input(core::input_shape(topo));
    tensor::fill_normal(input, rng, 0.0f, 1.0f);

    dnn::ExecContext ctx_fused =
        fused.make_context(dnn::ExecMode::kTraining);
    dnn::ExecContext ctx_plain =
        plain.make_context(dnn::ExecMode::kTraining);
    const Tensor& out_fused = ctx_fused.forward(input, pool);
    const Tensor& out_plain = ctx_plain.forward(input, pool);
    EXPECT_EQ(
        tensor::max_abs_diff(out_fused.values(), out_plain.values()),
        0.0f);

    Tensor dloss(fused.output_shape());
    tensor::fill_normal(dloss, rng, 0.0f, 1.0f);
    ctx_fused.backward(dloss, pool);
    ctx_plain.backward(dloss, pool);
    std::vector<float> grads_fused(
        static_cast<std::size_t>(fused.param_count()));
    std::vector<float> grads_plain(grads_fused.size());
    ctx_fused.copy_grads_to(grads_fused);
    ctx_plain.copy_grads_to(grads_plain);
    EXPECT_EQ(tensor::max_abs_diff(grads_fused, grads_plain), 0.0f);
  }
}

// --- End-to-end: whole training trajectories match. ---

TEST(FusionE2E, LossTrajectoryIdenticalAcrossRankCounts) {
  runtime::ThreadPool gen_pool;
  core::DatasetGenConfig gen;
  gen.simulations = 6;
  gen.sim.grid = {16, 64.0};
  gen.sim.voxels = 16;
  gen.seed = 53;
  core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);
  const data::InMemorySource train(std::move(dataset.train));
  const data::InMemorySource val(std::move(dataset.val));

  for (const int nranks : {1, 4}) {
    const auto run = [&](bool fuse) {
      core::TrainerConfig config;
      config.nranks = nranks;
      config.epochs = 2;
      config.fuse_eltwise = fuse;
      core::Trainer trainer(core::cosmoflow_scaled(8), train, val, config);
      return trainer.run();
    };
    const auto fused = run(true);
    const auto plain = run(false);
    ASSERT_EQ(fused.size(), plain.size());
    for (std::size_t e = 0; e < fused.size(); ++e) {
      EXPECT_EQ(fused[e].train_loss, plain[e].train_loss)
          << "nranks " << nranks << " epoch " << e;
      EXPECT_EQ(fused[e].val_loss, plain[e].val_loss)
          << "nranks " << nranks << " epoch " << e;
    }
  }
}

}  // namespace
}  // namespace cf
