// MlComm: the Cray CPE ML Plugin substitute (DESIGN.md §1).
//
// The paper parallelizes training with an MPI-based plugin exposing
// three operations: initial model broadcast, synchronous gradient
// aggregation (a fully-synchronous allreduce-average) and scalar loss
// averaging. Here MPI ranks are modelled as threads of one process
// sharing an MlComm object; every collective is phrased exactly as its
// message-passing counterpart:
//
//  * kReduceScatter — each rank owns 1/k of the vector, reduces it
//    across all ranks in fixed rank order, then all-gathers the owned
//    pieces. This is the decentralized, every-rank-is-a-worker design
//    of the CPE ML Plugin (no parameter servers, §III-D), and is
//    bitwise deterministic.
//  * kCentralRoot — rank 0 reduces everything and redistributes: the
//    centralized gRPC-style scheme the paper cites as non-scalable
//    (Mathuriya et al. 2017), kept as the algorithmic baseline.
//
// Chunked processing emulates the plugin's helper-thread pipelining
// granularity, and an injectable per-rank delay hook reproduces the
// "straggler" effect studied in §II-C/§VI-B.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/barrier.hpp"
#include "runtime/timer.hpp"

namespace cf::comm {

enum class AllreduceAlgorithm { kReduceScatter, kCentralRoot };

struct MlCommConfig {
  AllreduceAlgorithm algorithm = AllreduceAlgorithm::kReduceScatter;
  /// Reduction work is processed in chunks of this many floats,
  /// mirroring the helper-thread pipelining granularity of the plugin.
  std::size_t chunk_elems = 1 << 16;
  /// Test hook: invoked by each rank before it contributes to a
  /// collective (straggler injection).
  std::function<void(int rank)> pre_reduce_hook;
};

class MlComm;

/// Per-rank interface; each rank thread holds one.
class RankHandle {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  void barrier();

  /// Copies root's buffer into every other rank's buffer. All ranks
  /// pass spans of identical size.
  void broadcast(std::span<float> data, int root = 0);

  /// In-place sum-then-divide-by-k over all ranks (the
  /// mc.gradients() call of Algorithm 2). Deterministic.
  void allreduce_average(std::span<float> data);

  /// Averaged scalar (validation-loss averaging).
  double allreduce_average_scalar(double value);

  /// Wall-clock spent inside collectives on this rank — a snapshot of
  /// the `comm/collective/r<rank>` Stat in the obs registry (each
  /// MlComm resets its ranks' stats at construction).
  runtime::TimeStats comm_time() const;
  void reset_comm_time();

 private:
  friend class MlComm;
  RankHandle(MlComm* comm, int rank) : comm_(comm), rank_(rank) {}

  MlComm* comm_;
  int rank_;
};

class MlComm {
 public:
  explicit MlComm(int nranks, MlCommConfig config = {});

  int size() const noexcept { return nranks_; }
  RankHandle& handle(int rank);

  /// Convenience harness: spawns `nranks` threads, gives each its
  /// handle, joins. The first exception thrown by any rank is
  /// rethrown.
  void run(const std::function<void(RankHandle&)>& body);

 private:
  friend class RankHandle;

  void publish(int rank, float* data, std::size_t size);
  void do_broadcast(int rank, std::span<float> data, int root);
  void do_allreduce(int rank, std::span<float> data);
  void reduce_scatter_allgather(int rank, std::span<float> data);
  void central_root(int rank, std::span<float> data);
  void check_uniform_size_locked(std::size_t size);

  int nranks_;
  MlCommConfig config_;
  runtime::Barrier barrier_;
  std::vector<RankHandle> handles_;
  std::vector<float*> slots_;
  std::vector<std::size_t> slot_sizes_;
  std::vector<float> reduce_buffer_;
  std::vector<double> scalar_slots_;
  // Telemetry handles (obs registry), looked up once at construction.
  std::vector<obs::Stat*> comm_stats_;     // comm/collective/r<rank>
  obs::Counter* allreduce_calls_ = nullptr;
  obs::Counter* allreduce_bytes_ = nullptr;
  obs::Counter* allreduce_chunks_ = nullptr;
};

}  // namespace cf::comm
