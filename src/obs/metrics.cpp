#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

#include "obs/jsonl.hpp"

namespace cf::obs {

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: outlives threads
  return *registry;
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name, std::mutex& mutex) {
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

using json::append_double;
using json::append_quoted;

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name, mutex_);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, mutex_);
}

Stat& Registry::stat(std::string_view name) {
  return find_or_create(stats_, name, mutex_);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, name, mutex_);
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), reported as that bucket's upper bound.
  const double target = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(target);
  if (static_cast<double>(rank) < target || rank == 0) ++rank;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(buckets.size() - 1);
}

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  return kFloor * std::pow(kGrowth, static_cast<double>(i) + 1.0);
}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > kFloor)) return 0;  // incl. NaN and negatives
  const double idx = std::log(value / kFloor) / std::log(kGrowth);
  if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  for (const auto& [name, stat] : stats_) {
    snap.stats.emplace(name, stat->snapshot());
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  for (auto& [name, stat] : stats_) stat->reset();
}

void Registry::reset_prefix(std::string_view prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto matches = [&](const std::string& name) {
    return name.size() >= prefix.size() &&
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  for (auto& [name, counter] : counters_) {
    if (matches(name)) counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    if (matches(name)) gauge->reset();
  }
  for (auto& [name, histogram] : histograms_) {
    if (matches(name)) histogram->reset();
  }
  for (auto& [name, stat] : stats_) {
    if (matches(name)) stat->reset();
  }
}

std::string Registry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count);
    out += ",\"sum\":";
    append_double(out, hist.sum);
    out += ",\"min\":";
    append_double(out, hist.min);
    out += ",\"max\":";
    append_double(out, hist.max);
    out += ",\"mean\":";
    append_double(out, hist.mean());
    out += ",\"p50\":";
    append_double(out, hist.percentile(0.50));
    out += ",\"p99\":";
    append_double(out, hist.percentile(0.99));
    out += ",\"p999\":";
    append_double(out, hist.percentile(0.999));
    out += '}';
  }
  out += "},\"stats\":{";
  first = true;
  for (const auto& [name, stats] : snap.stats) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(stats.count());
    out += ",\"total\":";
    append_double(out, stats.total());
    out += ",\"min\":";
    append_double(out, stats.min());
    out += ",\"max\":";
    append_double(out, stats.max());
    out += ",\"mean\":";
    append_double(out, stats.mean());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace cf::obs
