#include "runtime/rng.hpp"

#include <cmath>

namespace cf::runtime {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline std::uint32_t mul_hi(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * b) >> 32);
}

inline Philox4x32::Counter single_round(Philox4x32::Counter ctr,
                                        Philox4x32::Key key) noexcept {
  const std::uint32_t lo0 = kPhiloxM0 * ctr[0];
  const std::uint32_t hi0 = mul_hi(kPhiloxM0, ctr[0]);
  const std::uint32_t lo1 = kPhiloxM1 * ctr[2];
  const std::uint32_t hi1 = mul_hi(kPhiloxM1, ctr[2]);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

Philox4x32::Counter Philox4x32::round10(Counter ctr, Key key) noexcept {
  for (int round = 0; round < 10; ++round) {
    ctr = single_round(ctr, key);
    key[0] += kPhiloxW0;
    key[1] += kPhiloxW1;
  }
  return ctr;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  key_ = {static_cast<std::uint32_t>(seed),
          static_cast<std::uint32_t>(seed >> 32)};
  counter_ = {0, 0, static_cast<std::uint32_t>(stream),
              static_cast<std::uint32_t>(stream >> 32)};
}

void Rng::refill() noexcept {
  buffer_ = Philox4x32::round10(counter_, key_);
  buffered_ = 4;
  // 64-bit increment of the low half of the counter; the high half
  // carries the stream id and is never touched.
  if (++counter_[0] == 0) ++counter_[1];
}

std::uint32_t Rng::next_u32() noexcept {
  if (buffered_ == 0) refill();
  return buffer_[4 - buffered_--];
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t hi = next_u32();
  return (hi << 32) | next_u32();
}

float Rng::uniform() noexcept {
  // 24 significant bits so the result is exact in float and < 1.
  return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
}

double Rng::uniform_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) noexcept {
  return lo + (hi - lo) * uniform();
}

float Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 must be > 0 for the log.
  float u1 = 0.0f;
  do {
    u1 = uniform();
  } while (u1 <= 0.0f);
  const float u2 = uniform();
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float angle = 2.0f * 3.14159265358979323846f * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

float Rng::normal(float mean, float stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % n;
  std::uint64_t value = 0;
  do {
    value = next_u64();
  } while (value >= limit);
  return value % n;
}

void Rng::skip_blocks(std::uint64_t n) noexcept {
  const std::uint64_t lo = counter_[0] + static_cast<std::uint32_t>(n);
  const bool carry_lo = lo < counter_[0];
  counter_[0] = static_cast<std::uint32_t>(lo);
  counter_[1] += static_cast<std::uint32_t>(n >> 32) + (carry_lo ? 1 : 0);
  buffered_ = 0;
  has_cached_normal_ = false;
}

}  // namespace cf::runtime
