#include "core/precision_eval.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::core {

std::vector<tensor::Tensor> precision_eval_inputs(
    const tensor::Shape& shape, std::size_t count, std::uint64_t seed) {
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    runtime::Rng rng(seed, static_cast<std::uint64_t>(i));
    tensor::Tensor t(shape);
    tensor::fill_normal(t, rng, 0.0f, 1.0f);
    inputs.push_back(std::move(t));
  }
  return inputs;
}

double prediction_mae(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument(
        "prediction_mae: spans must be equal-sized and non-empty");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum / static_cast<double>(a.size());
}

}  // namespace cf::core
