// Compile-and-run check of the COSMOFLOW_TELEMETRY=OFF contract: this
// translation unit forces COSMOFLOW_TELEMETRY_ENABLED=0 before
// including obs/telemetry.hpp, so CF_TRACE_SCOPE must expand to a
// plain no-op statement — it must parse in every position a span is
// legal in and record nothing.
#include <gtest/gtest.h>

#ifdef COSMOFLOW_TELEMETRY_ENABLED
#undef COSMOFLOW_TELEMETRY_ENABLED
#endif
#define COSMOFLOW_TELEMETRY_ENABLED 0
#include "obs/telemetry.hpp"

static_assert(COSMOFLOW_TELEMETRY_ENABLED == 0,
              "macro override must hold for this TU");

namespace cf::obs {
namespace {

TEST(ObsDisabled, SpanMacroCompilesToNothingAndRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  {
    CF_TRACE_SCOPE("off/one_arg");
    CF_TRACE_SCOPE("off/two_args", "test");
    if (true) CF_TRACE_SCOPE("off/single_statement_if");
    for (int i = 0; i < 2; ++i) CF_TRACE_SCOPE("off/loop_body");
  }
  for (const TraceEvent& event : tracer.snapshot()) {
    EXPECT_TRUE(std::string(event.name).rfind("off/", 0) != 0)
        << "span recorded despite COSMOFLOW_TELEMETRY_ENABLED=0";
  }
}

TEST(ObsDisabled, MetricsStayAvailableWhenSpansAreOff) {
  // Counters and Stats are runtime objects, not macros: they keep
  // working in OFF builds (the registry feeds breakdown()/EpochStats).
  Registry registry;
  registry.counter("off/counter").add(2);
  registry.stat("off/stat").add(1.5);
  EXPECT_EQ(registry.counter("off/counter").value(), 2);
  EXPECT_EQ(registry.stat("off/stat").snapshot().count(), 1);
}

}  // namespace
}  // namespace cf::obs
