#include "iosim/steptime_model.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace cf::iosim {

StepTimeModel::StepTimeModel(StepModelParams params,
                             FilesystemModel filesystem)
    : params_(params), filesystem_(std::move(filesystem)) {
  if (params_.compute_seconds <= 0.0 || params_.sample_mbytes <= 0.0 ||
      params_.gradient_mbytes <= 0.0 || params_.allreduce_bw0_gbps <= 0.0) {
    throw std::invalid_argument("StepTimeModel: bad parameters");
  }
}

double StepTimeModel::allreduce_seconds(int nodes) const {
  if (nodes <= 0) throw std::invalid_argument("nodes must be positive");
  if (nodes == 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(nodes)));
  const double bw = params_.allreduce_bw0_gbps /
                    (1.0 + params_.allreduce_beta * stages);
  // The reduction moves twice the message length end to end (§VI-B).
  return params_.allreduce_alpha * stages +
         2.0 * params_.gradient_mbytes / 1000.0 / bw;
}

double StepTimeModel::io_seconds(int nodes) const {
  return filesystem_.read_seconds(nodes, params_.sample_mbytes);
}

double StepTimeModel::step_seconds(int nodes) const {
  return std::max(params_.compute_seconds, io_seconds(nodes)) +
         allreduce_seconds(nodes);
}

double StepTimeModel::epoch_seconds(int nodes, std::int64_t train_samples,
                                    std::int64_t val_samples) const {
  if (train_samples <= 0 || val_samples < 0) {
    throw std::invalid_argument("epoch_seconds: bad sample counts");
  }
  const double train_steps = static_cast<double>(train_samples) /
                             static_cast<double>(nodes);
  const double val_steps =
      static_cast<double>(val_samples) / static_cast<double>(nodes);
  // Validation runs the forward pass only; it still reads samples, so
  // the max() structure applies with the reduced compute cost, and the
  // scalar loss averaging is folded into the epoch overhead.
  const double val_step =
      std::max(params_.compute_seconds * params_.validation_step_fraction,
               io_seconds(nodes));
  return train_steps * step_seconds(nodes) + val_steps * val_step +
         params_.epoch_overhead_seconds;
}

std::vector<ScalingPoint> StepTimeModel::sweep(
    const std::vector<int>& node_counts, std::int64_t train_samples,
    std::int64_t val_samples, double flops_per_sample) const {
  CF_TRACE_SCOPE("iosim/sweep", "iosim");
  obs::Registry::global()
      .counter("iosim/sweep_points")
      .add(static_cast<std::int64_t>(node_counts.size()));
  std::vector<ScalingPoint> points;
  points.reserve(node_counts.size());
  const double epoch1 = epoch_seconds(1, train_samples, val_samples);
  for (const int nodes : node_counts) {
    ScalingPoint point;
    point.nodes = nodes;
    point.io_seconds = io_seconds(nodes);
    point.allreduce_seconds = allreduce_seconds(nodes);
    point.step_seconds = step_seconds(nodes);
    point.epoch_seconds = epoch_seconds(nodes, train_samples, val_samples);
    point.speedup = epoch1 / point.epoch_seconds;
    point.efficiency = point.speedup / static_cast<double>(nodes);
    point.samples_per_second =
        static_cast<double>(nodes) / point.step_seconds;
    point.sustained_pflops =
        point.samples_per_second * flops_per_sample / 1e15;
    points.push_back(point);
  }
  return points;
}

}  // namespace cf::iosim
