// Fully-connected layer for the CosmoFlow regression head.
//
// Weights are stored input-major ({I, O}) so the forward pass, the
// weight-gradient outer product and the data-gradient dot product all
// stream contiguously over the output dimension and vectorize.
#pragma once

#include "dnn/layer.hpp"
#include "runtime/rng.hpp"

namespace cf::dnn {

class Dense final : public Layer {
 public:
  Dense(std::string name, std::int64_t in_features,
        std::int64_t out_features);

  std::string kind() const override { return "dense"; }

  /// Input: plain {in_features}. Output: plain {out_features}.
  tensor::Shape plan(const tensor::Shape& input) override;

  using Layer::backward;
  using Layer::forward;

  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               LayerExecState& exec,
               runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc, LayerExecState& exec,
                runtime::ThreadPool& pool) const override;
  void backward(const tensor::Tensor& src, const tensor::Tensor& dst,
                tensor::Tensor& ddst, tensor::Tensor& dsrc, bool need_dsrc,
                LayerExecState& exec,
                runtime::ThreadPool& pool) const override;

  // Reduced-precision inference forwards (dnn/forward_rp.cpp); the
  // fp32 chunked reduction above is untouched.
  bool supports_precision(Precision p) const override {
    static_cast<void>(p);
    return true;
  }
  void forward_bf16(const bf16_t* src, bf16_t* dst,
                    std::span<const bf16_t> params, LayerExecState& exec,
                    runtime::ThreadPool& pool) const override;
  void pack_weights_bf16(std::span<bf16_t> segment) const override;
  void forward_int8w(const tensor::Tensor& src, tensor::Tensor& dst,
                     std::span<const std::int8_t> qweights,
                     std::span<const float> scales, LayerExecState& exec,
                     runtime::ThreadPool& pool) const override;
  std::size_t int8_weight_count() const override {
    return static_cast<std::size_t>(in_ * out_);
  }
  std::size_t int8_scale_count() const override {
    return static_cast<std::size_t>(out_);
  }
  void quantize_weights_int8(std::span<std::int8_t> qweights,
                             std::span<float> scales) const override;

  /// Post-op fusion of a trailing LeakyReLU (see Conv3d::fuse_leaky_relu
  /// for the bitwise-equivalence argument).
  bool fuse_leaky_relu(float slope) override;
  bool fused() const noexcept { return fused_; }

  std::vector<ParamSpec> param_specs() override;
  FlopCounts flops() const override;

  /// Un-planned copy (same widths + fusion state, fresh weights) for
  /// Network::make_shape_view.
  std::unique_ptr<Layer> clone_unplanned() const override {
    auto copy = std::make_unique<Dense>(name(), in_, out_);
    if (fused_) copy->fuse_leaky_relu(slope_);
    return copy;
  }

  /// Deterministic Xavier/Glorot initialization.
  void init_xavier(runtime::Rng& rng);

  std::int64_t in_features() const noexcept { return in_; }
  std::int64_t out_features() const noexcept { return out_; }

  /// weights are {I, O}; w(i, o) = weights()[i * O + o].
  tensor::Tensor& weights() noexcept { return weights_; }
  const tensor::Tensor& weights() const noexcept { return weights_; }
  tensor::Tensor& bias() noexcept { return bias_; }

 private:
  std::int64_t in_ = 0;
  std::int64_t out_ = 0;
  bool fused_ = false;
  float slope_ = 0.0f;
  tensor::Tensor weights_;
  tensor::Tensor bias_;
};

}  // namespace cf::dnn
