// Radix-2 complex FFT, 1D and cubic 3D.
//
// The simulation substrate (DESIGN.md §1) generates Gaussian random
// fields and Zel'dovich displacement fields in Fourier space; this FFT
// replaces the FFTW/numpy machinery under MUSIC/pycola. Grid sizes are
// powers of two (the paper's grids are 512/256/128).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace cf::cosmo {

/// In-place iterative Cooley-Tukey FFT of length n = 2^m.
/// `inverse` applies the conjugate transform *without* 1/n scaling.
void fft_1d(std::complex<float>* data, std::int64_t n, bool inverse);

/// Cubic 3D FFT over an n^3 complex grid (row-major [z][y][x]).
class Fft3d {
 public:
  explicit Fft3d(std::int64_t n);

  std::int64_t n() const noexcept { return n_; }

  /// Forward transform, unnormalized (sum convention).
  void forward(std::complex<float>* grid, runtime::ThreadPool& pool) const;

  /// Inverse transform including the 1/n^3 normalization, so
  /// inverse(forward(x)) == x.
  void inverse(std::complex<float>* grid, runtime::ThreadPool& pool) const;

 private:
  void transform(std::complex<float>* grid, bool inverse,
                 runtime::ThreadPool& pool) const;

  std::int64_t n_;
};

/// Frequency index -> signed wavenumber index: {0, 1, .., n/2, -(n/2-1),
/// .., -1} (the usual FFT ordering).
std::int64_t fft_freq_index(std::int64_t i, std::int64_t n);

}  // namespace cf::cosmo
