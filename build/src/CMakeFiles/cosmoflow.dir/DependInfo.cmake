
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/mlcomm.cpp" "src/CMakeFiles/cosmoflow.dir/comm/mlcomm.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/comm/mlcomm.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "src/CMakeFiles/cosmoflow.dir/core/baseline.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/core/baseline.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/CMakeFiles/cosmoflow.dir/core/checkpoint.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/dataset_gen.cpp" "src/CMakeFiles/cosmoflow.dir/core/dataset_gen.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/core/dataset_gen.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/cosmoflow.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/CMakeFiles/cosmoflow.dir/core/topology.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/core/topology.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/cosmoflow.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/core/trainer.cpp.o.d"
  "/root/repo/src/cosmo/deposit.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/deposit.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/deposit.cpp.o.d"
  "/root/repo/src/cosmo/fft3d.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/fft3d.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/fft3d.cpp.o.d"
  "/root/repo/src/cosmo/gaussian_field.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/gaussian_field.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/gaussian_field.cpp.o.d"
  "/root/repo/src/cosmo/growth.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/growth.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/growth.cpp.o.d"
  "/root/repo/src/cosmo/power_spectrum.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/power_spectrum.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/power_spectrum.cpp.o.d"
  "/root/repo/src/cosmo/simulation.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/simulation.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/simulation.cpp.o.d"
  "/root/repo/src/cosmo/statistics.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/statistics.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/statistics.cpp.o.d"
  "/root/repo/src/cosmo/zeldovich.cpp" "src/CMakeFiles/cosmoflow.dir/cosmo/zeldovich.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/cosmo/zeldovich.cpp.o.d"
  "/root/repo/src/data/augment.cpp" "src/CMakeFiles/cosmoflow.dir/data/augment.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/data/augment.cpp.o.d"
  "/root/repo/src/data/cfrecord.cpp" "src/CMakeFiles/cosmoflow.dir/data/cfrecord.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/data/cfrecord.cpp.o.d"
  "/root/repo/src/data/crc32.cpp" "src/CMakeFiles/cosmoflow.dir/data/crc32.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/data/crc32.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/cosmoflow.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/pipeline.cpp" "src/CMakeFiles/cosmoflow.dir/data/pipeline.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/data/pipeline.cpp.o.d"
  "/root/repo/src/data/sample.cpp" "src/CMakeFiles/cosmoflow.dir/data/sample.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/data/sample.cpp.o.d"
  "/root/repo/src/dnn/activations.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/activations.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/activations.cpp.o.d"
  "/root/repo/src/dnn/avgpool3d.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/avgpool3d.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/avgpool3d.cpp.o.d"
  "/root/repo/src/dnn/conv3d.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/conv3d.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/conv3d.cpp.o.d"
  "/root/repo/src/dnn/conv3d_ref.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/conv3d_ref.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/conv3d_ref.cpp.o.d"
  "/root/repo/src/dnn/dense.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/dense.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/dense.cpp.o.d"
  "/root/repo/src/dnn/flatten.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/flatten.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/flatten.cpp.o.d"
  "/root/repo/src/dnn/loss.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/loss.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/loss.cpp.o.d"
  "/root/repo/src/dnn/network.cpp" "src/CMakeFiles/cosmoflow.dir/dnn/network.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/dnn/network.cpp.o.d"
  "/root/repo/src/iosim/filesystem_model.cpp" "src/CMakeFiles/cosmoflow.dir/iosim/filesystem_model.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/iosim/filesystem_model.cpp.o.d"
  "/root/repo/src/iosim/steptime_model.cpp" "src/CMakeFiles/cosmoflow.dir/iosim/steptime_model.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/iosim/steptime_model.cpp.o.d"
  "/root/repo/src/optim/adam.cpp" "src/CMakeFiles/cosmoflow.dir/optim/adam.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/optim/adam.cpp.o.d"
  "/root/repo/src/optim/larc_adam.cpp" "src/CMakeFiles/cosmoflow.dir/optim/larc_adam.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/optim/larc_adam.cpp.o.d"
  "/root/repo/src/optim/lr_schedule.cpp" "src/CMakeFiles/cosmoflow.dir/optim/lr_schedule.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/optim/lr_schedule.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/CMakeFiles/cosmoflow.dir/optim/sgd.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/optim/sgd.cpp.o.d"
  "/root/repo/src/runtime/logging.cpp" "src/CMakeFiles/cosmoflow.dir/runtime/logging.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/runtime/logging.cpp.o.d"
  "/root/repo/src/runtime/rng.cpp" "src/CMakeFiles/cosmoflow.dir/runtime/rng.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/runtime/rng.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/cosmoflow.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/tensor/layout.cpp" "src/CMakeFiles/cosmoflow.dir/tensor/layout.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/tensor/layout.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/cosmoflow.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/cosmoflow.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/tensor/tensor_ops.cpp" "src/CMakeFiles/cosmoflow.dir/tensor/tensor_ops.cpp.o" "gcc" "src/CMakeFiles/cosmoflow.dir/tensor/tensor_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
