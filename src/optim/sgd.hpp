// Plain SGD with momentum — the ablation baseline against Adam+LARC
// (the paper motivates LARC by the instability of plain large-batch
// SGD; bench/bench_ablation compares the two).
//
// Like LarcAdam, the step is a single fused sweep over the parameter
// arenas in fixed ~4096-element blocks; the update is purely
// elementwise, so any block partition produces the same bits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dnn/layer.hpp"
#include "optim/lr_schedule.hpp"
#include "runtime/thread_pool.hpp"

namespace cf::optim {

class SgdMomentum {
 public:
  /// Binds to the network's parameter tensors (arena views after
  /// Network::finalize(), like LarcAdam).
  SgdMomentum(std::vector<dnn::ParamView> params, double momentum,
              std::shared_ptr<const LrSchedule> schedule);

  void step();

  /// Thread-parallel step; bitwise identical to the serial step().
  void step(runtime::ThreadPool& pool);

  std::int64_t steps_taken() const noexcept { return step_; }

 private:
  struct Block {
    std::uint32_t group = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
  };

  void step_impl(runtime::ThreadPool* pool);
  void update_blocks(std::size_t begin, std::size_t end, float rate);

  std::vector<dnn::ParamView> params_;
  std::vector<float> velocity_;  // flat, group-major like the arena
  std::vector<std::size_t> velocity_offset_;
  std::vector<Block> blocks_;
  double momentum_;
  std::shared_ptr<const LrSchedule> schedule_;
  std::int64_t step_ = 0;
};

}  // namespace cf::optim
