// Table I reproduction: per-convolution-layer time and flop rate for
// the forward (Fwd), backward-weights (Bww) and backward-data (Bwd)
// passes of the canonical 128^3 network, batch size 1.
//
// The paper measures a 68-core KNL node (AVX-512, 535 Gflop/s whole-
// net); this machine is a single AVX-512 core, so absolute times are
// larger — the comparison targets are the *ratios*: conv2 dominates,
// the last four convs are cheap, early layers run much faster than the
// tail (channel-starved) layers.
//
//   ./bench_table1_conv_layers [--iters=3]
//
// With telemetry compiled in (the default), per-pass times come from
// the cf::obs trace spans the layers emit; with COSMOFLOW_TELEMETRY=OFF
// the table falls back to the per-layer profile timers.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "core/topology.hpp"
#include "obs/telemetry.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace cf;
  int iters = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    }
  }

  std::printf("=== bench_table1_conv_layers: Table I, canonical 128^3 "
              "network ===\n");
  std::printf("(%d timed iterations after one warm-up; single core)\n\n",
              iters);

  dnn::Network net = core::build_network(core::cosmoflow_128(), 7);
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kTraining);
  runtime::ThreadPool pool;
  tensor::Tensor input(net.input_shape());
  runtime::Rng rng(7);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  tensor::Tensor dloss(net.output_shape());
  dloss.fill(1.0f);

  // Warm-up (also pages in all buffers).
  ctx.forward(input, pool);
  ctx.zero_grads();
  ctx.backward(dloss, pool);
  ctx.reset_profiles();
#if COSMOFLOW_TELEMETRY_ENABLED
  obs::Tracer::global().clear();
#endif

  const runtime::Stopwatch watch;
  for (int it = 0; it < iters; ++it) {
    ctx.forward(input, pool);
    ctx.zero_grads();
    ctx.backward(dloss, pool);
  }
  const double step = watch.elapsed_seconds() / iters;

#if COSMOFLOW_TELEMETRY_ENABLED
  // Regenerate the table from the trace: mean duration of the
  // `{layer}/fwd`, `{layer}/bww` and `{layer}/bwd_data` spans.
  std::map<std::string, std::pair<double, int>> span_ms;
  for (const obs::TraceEvent& event : obs::Tracer::global().snapshot()) {
    auto& [total, count] = span_ms[event.name];
    total += static_cast<double>(event.dur_ns) / 1e6;
    ++count;
  }
  const auto span_mean_ms = [&](const std::string& name) {
    const auto it = span_ms.find(name);
    return it != span_ms.end() && it->second.second > 0
               ? it->second.first / it->second.second
               : 0.0;
  };
  std::printf("(per-pass times aggregated from cf::obs trace spans)\n");
#else
  std::printf("(telemetry off: per-pass times from layer profile "
              "timers)\n");
#endif

  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s\n", "Layer", "Fwd ms",
              "Bww ms", "Bwd ms", "Fwd GF/s", "Bww GF/s", "Bwd GF/s");
  double conv_total_ms = 0.0;
  for (const dnn::LayerProfile& profile : ctx.profiles()) {
    if (profile.kind != "conv") continue;
#if COSMOFLOW_TELEMETRY_ENABLED
    const double fwd_ms = span_mean_ms(profile.name + "/fwd");
    const double bww_ms = span_mean_ms(profile.name + "/bww");
    const double bwd_ms = span_mean_ms(profile.name + "/bwd_data");
#else
    const double fwd_ms = profile.fwd.mean() * 1e3;
    const double bww_ms = profile.bwd_weights.mean() * 1e3;
    const double bwd_ms = profile.bwd_data.count() > 0
                              ? profile.bwd_data.mean() * 1e3
                              : 0.0;
#endif
    const auto rate = [](double flops, double ms) {
      return ms > 0.0 ? flops / (ms * 1e-3) / 1e9 : 0.0;
    };
    std::printf("%-8s | %8.2f %8.2f %8.2f | %8.1f %8.1f %8.1f\n",
                profile.name.c_str(), fwd_ms, bww_ms, bwd_ms,
                rate(static_cast<double>(profile.flops.fwd), fwd_ms),
                rate(static_cast<double>(profile.flops.bwd_weights),
                     bww_ms),
                rate(static_cast<double>(profile.flops.bwd_data), bwd_ms));
    conv_total_ms += fwd_ms + bww_ms + bwd_ms;
  }
  const double gflop =
      static_cast<double>(net.flops(true).total()) / 1e9;
  std::printf("\nconv total: %.1f ms; full fwd+bwd step: %.1f ms "
              "(%.1f Gflop -> %.1f Gflop/s sustained, single core)\n",
              conv_total_ms, step * 1e3, gflop, gflop / step);
  std::printf("paper (68-core KNL): conv total 30.3 ms, step 145 ms, "
              "535 Gflop/s/node\n");
  std::printf("shape targets: conv2 dominates every pass; conv4-7 "
              "contribute <5%% of conv time; Table I's largest/smallest "
              "per-layer ratio is O(100x).\n");
  return 0;
}
