# Empty dependencies file for cosmoflow.
# This may be replaced when dependencies are built.
