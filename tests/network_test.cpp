// Network container tests: wiring, flat parameter interface, error
// handling, and an end-to-end gradient check through a full conv ->
// pool -> dense stack.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/activations.hpp"
#include "dnn/avgpool3d.hpp"
#include "dnn/conv3d.hpp"
#include "dnn/dense.hpp"
#include "dnn/flatten.hpp"
#include "dnn/loss.hpp"
#include "dnn/network.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::dnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Network make_small_network(std::uint64_t seed) {
  Network net;
  auto& conv1 = net.emplace<Conv3d>(
      "conv1", Conv3dConfig{1, 16, 3, 1, Padding::kSame});
  net.emplace<LeakyRelu>("act1", 0.01f);
  net.emplace<AvgPool3d>("pool1", AvgPool3dConfig{2, 2});
  auto& conv2 = net.emplace<Conv3d>(
      "conv2", Conv3dConfig{16, 16, 3, 2, Padding::kSame});
  net.emplace<LeakyRelu>("act2", 0.01f);
  net.emplace<Flatten>("flatten", 16);
  auto& fc = net.emplace<Dense>("fc", 16 * 2 * 2 * 2, 3);
  net.finalize(Shape{1, 8, 8, 8});
  runtime::Rng rng(seed);
  conv1.init_he(rng);
  conv2.init_he(rng);
  fc.init_xavier(rng);
  return net;
}

TEST(Network, ForwardProducesExpectedShapes) {
  Network net = make_small_network(1);
  EXPECT_EQ(net.input_shape(), Shape({1, 8, 8, 8}));
  EXPECT_EQ(net.output_shape(), Shape({3}));
  EXPECT_EQ(net.layer_count(), 7u);

  runtime::ThreadPool pool(2);
  Tensor input(net.input_shape());
  runtime::Rng rng(2);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  ExecContext ctx = net.make_context(ExecMode::kTraining);
  const Tensor& out = ctx.forward(input, pool);
  EXPECT_EQ(out.shape(), Shape({3}));
  for (const float v : out.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Network, MisuseThrows) {
  Network empty;
  EXPECT_THROW(empty.finalize(Shape{1, 8, 8, 8}), std::logic_error);
  EXPECT_THROW(empty.make_context(ExecMode::kTraining), std::logic_error);

  Network net = make_small_network(3);
  EXPECT_THROW(net.finalize(Shape{1, 8, 8, 8}), std::logic_error);
  EXPECT_THROW(net.add(std::make_unique<LeakyRelu>("late", 0.01f)),
               std::logic_error);

  runtime::ThreadPool pool(1);
  ExecContext ctx = net.make_context(ExecMode::kTraining);
  Tensor dloss(Shape{3});
  EXPECT_THROW(ctx.backward(dloss, pool), std::logic_error);  // no forward

  Tensor bad_input(Shape{1, 4, 4, 4});
  EXPECT_THROW(ctx.forward(bad_input, pool), std::invalid_argument);
}

TEST(Network, FlatParamRoundTrip) {
  Network a = make_small_network(4);
  Network b = make_small_network(5);
  const std::size_t n = static_cast<std::size_t>(a.param_count());
  ASSERT_EQ(n, static_cast<std::size_t>(b.param_count()));

  std::vector<float> params(n);
  a.copy_params_to(params);
  b.set_params_from(params);
  std::vector<float> check(n);
  b.copy_params_to(check);
  EXPECT_EQ(tensor::max_abs_diff(params, check), 0.0f);

  // Identical parameters -> identical predictions (one stream runs
  // forward-only, exercising the inference-lean context).
  runtime::ThreadPool pool(1);
  Tensor input(a.input_shape());
  runtime::Rng rng(6);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  ExecContext ca = a.make_context(ExecMode::kTraining);
  ExecContext cb = b.make_context(ExecMode::kInference);
  const std::vector<float> ya = ca.forward(input, pool).to_vector();
  const std::vector<float> yb = cb.forward(input, pool).to_vector();
  EXPECT_EQ(tensor::max_abs_diff(ya, yb), 0.0f);

  std::vector<float> wrong(n + 1);
  EXPECT_THROW(a.set_params_from(wrong), std::invalid_argument);
}

TEST(Network, FlatGradRoundTrip) {
  Network net = make_small_network(7);
  runtime::ThreadPool pool(1);
  Tensor input(net.input_shape());
  runtime::Rng rng(8);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  ExecContext ctx = net.make_context(ExecMode::kTraining);
  ctx.forward(input, pool);
  Tensor dloss(Shape{3});
  dloss.fill(1.0f);
  ctx.zero_grads();
  ctx.backward(dloss, pool);

  const std::size_t n = static_cast<std::size_t>(net.param_count());
  std::vector<float> grads(n);
  ctx.copy_grads_to(grads);
  EXPECT_GT(tensor::max_abs(grads), 0.0f);

  ctx.zero_grads();
  std::vector<float> zeros(n);
  ctx.copy_grads_to(zeros);
  EXPECT_EQ(tensor::max_abs(zeros), 0.0f);

  ctx.set_grads_from(grads);
  std::vector<float> check(n);
  ctx.copy_grads_to(check);
  EXPECT_EQ(tensor::max_abs_diff(grads, check), 0.0f);
}

TEST(Network, EndToEndGradientCheck) {
  Network net = make_small_network(9);
  runtime::ThreadPool pool(1);
  Tensor input(net.input_shape());
  runtime::Rng rng(10);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  const std::vector<float> target{0.3f, -0.2f, 0.7f};
  ExecContext ctx = net.make_context(ExecMode::kTraining);

  const auto loss = [&] {
    const Tensor& out = ctx.forward(input, pool);
    return mse_loss(out.values(), target);
  };

  loss();
  const Tensor& out = ctx.forward(input, pool);
  Tensor dloss(Shape{3});
  mse_loss_grad(out.values(), target, dloss.values());
  ctx.zero_grads();
  ctx.backward(dloss, pool);

  const std::size_t n = static_cast<std::size_t>(net.param_count());
  std::vector<float> grads(n);
  ctx.copy_grads_to(grads);
  std::vector<float> params(n);
  net.copy_params_to(params);

  const float eps = 1e-2f;
  runtime::Rng pick(11);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 20; ++trial) {
    const std::size_t i = pick.uniform_index(n);
    if (std::fabs(grads[i]) < 1e-5f) continue;  // avoid noise-dominated
    std::vector<float> perturbed = params;
    perturbed[i] += eps;
    net.set_params_from(perturbed);
    const double up = loss();
    perturbed[i] -= 2 * eps;
    net.set_params_from(perturbed);
    const double down = loss();
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grads[i], numeric,
                5e-2 * std::max(0.05, std::fabs(numeric)))
        << "param " << i;
    ++checked;
  }
  EXPECT_GE(checked, 10);
  net.set_params_from(params);
}

TEST(Network, FlopAggregationMatchesLayerSum) {
  Network net = make_small_network(12);
  FlopCounts manual;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    FlopCounts f = net.layer(i).flops();
    if (i == 0) f.bwd_data = 0;
    manual += f;
  }
  EXPECT_EQ(net.flops(true).total(), manual.total());
  EXPECT_GT(net.flops(false).total(), net.flops(true).total());
}

TEST(Network, ProfilesAccumulateAndReset) {
  Network net = make_small_network(13);
  runtime::ThreadPool pool(1);
  Tensor input(net.input_shape());
  runtime::Rng rng(14);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  ExecContext ctx = net.make_context(ExecMode::kTraining);
  ctx.forward(input, pool);
  ctx.forward(input, pool);
  auto profiles = ctx.profiles();
  EXPECT_EQ(profiles.front().fwd.count(), 2u);
  ctx.reset_profiles();
  profiles = ctx.profiles();
  EXPECT_EQ(profiles.front().fwd.count(), 0u);

  // Timers are per-stream: a second context starts clean.
  ExecContext other = net.make_context(ExecMode::kTraining);
  EXPECT_EQ(other.profiles().front().fwd.count(), 0u);
}

}  // namespace
}  // namespace cf::dnn
