// cf::serve — dynamic micro-batching inference service over the
// model/stream split (DESIGN.md §2.3, SERVING.md).
//
// Pipeline: client threads -> bounded RequestQueue (admission control,
// typed Overloaded rejection) -> batch former (coalesces requests up
// to a max-batch-size / deadline budget) -> bounded batch queue
// (backpressure: when every worker is busy the former stalls, the
// request queue fills, and admission starts shedding) -> N worker
// streams, each owning one inference ExecContext and one private
// ThreadPool over a single shared `shared_ptr<const Network>` — many
// streams, one weight copy, zero parameter duplication.
//
// The serving determinism rule (DESIGN.md §2.4): a request's result is
// bitwise identical no matter which batch it lands in, which worker
// runs it, or what ran on that worker's context before — forward() is
// a pure function of (weights, input) because every kernel reduction
// is order-deterministic (§2.1) and a context's forward fully
// overwrites its arenas. tests/serve_test pins this.
//
// Everything is instrumented through cf::obs under
// `<metric_prefix>/…` (default `serve/…`): end-to-end latency
// histogram (p50/p99/p999), queue-depth and batch-size gauges,
// accepted/rejected/completed counters. See OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dnn/cost_model.hpp"
#include "dnn/network.hpp"
#include "obs/metrics.hpp"
#include "serve/request_queue.hpp"
#include "tensor/tensor.hpp"

namespace cf::serve {

struct ServerConfig {
  /// Worker streams; each owns one inference ExecContext + ThreadPool.
  std::size_t workers = 2;
  /// Intra-op threads per worker stream (1 = serial kernels). 0 = auto:
  /// the dnn::CostModel splits the machine's hardware-thread budget
  /// across the configured workers and picks the per-layer kernel
  /// grains for that width (DESIGN.md §2.6). On a 1-core host auto
  /// resolves to 1 thread per worker.
  std::size_t threads_per_worker = 1;
  /// Batch former size budget: flush as soon as this many requests
  /// have been coalesced.
  std::size_t max_batch = 8;
  /// Batch former deadline budget, seconds: a batch opened at t is
  /// flushed no later than t + max_delay_seconds even if underfull.
  /// 0 = greedy (take whatever is queued right now, never wait).
  double max_delay_seconds = 2e-3;
  /// Admission budget: submissions beyond this queue depth are
  /// rejected with SubmitStatus::kOverloaded.
  std::size_t queue_capacity = 64;
  /// obs registry prefix for this server's metrics (reset at
  /// construction, like cf::data::Pipeline's metric_prefix).
  std::string metric_prefix = "serve";
  /// Inference precision for every worker context (DESIGN.md §2.5).
  /// Non-fp32 requires the shared Network to have been prepared via
  /// prepare_inference_precision before the server is built; the
  /// constructor rejects an unprepared mode.
  dnn::Precision precision = dnn::Precision::kFp32;
};

/// Micro-batching inference server. Construction spawns the batch
/// former and the worker streams; shutdown() (or the destructor)
/// stops admission, drains every in-flight request, and joins.
class Server {
 public:
  Server(std::shared_ptr<const dnn::Network> network, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Non-blocking submission. On kAccepted, `*result` (if non-null)
  /// receives the future that resolves when a worker completes the
  /// request; on kOverloaded / kShutdown nothing is queued and
  /// `*result` is untouched. Throws std::invalid_argument on an input
  /// shape mismatch (a malformed request, not a load condition).
  SubmitStatus submit(tensor::Tensor input,
                      std::future<InferenceResult>* result);

  /// Stops admission, drains every accepted request through the
  /// workers, joins all threads. Idempotent; called by the destructor.
  void shutdown();

  std::size_t queue_depth() const { return queue_.depth(); }
  const ServerConfig& config() const noexcept { return config_; }
  const dnn::Network& network() const noexcept { return *network_; }

 private:
  /// A formed batch travelling former -> worker.
  struct Batch {
    std::uint64_t id = 0;
    std::vector<Request> requests;
  };

  /// Bounded former->worker hand-off. push() blocks while full — that
  /// stall is the backpressure path that fills the RequestQueue and
  /// trips admission control.
  class BatchQueue {
   public:
    explicit BatchQueue(std::size_t capacity) : capacity_(capacity) {}

    void push(Batch&& batch);
    /// False when closed and drained.
    bool pop(Batch* out);
    void close();

   private:
    std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<Batch> items_;
    const std::size_t capacity_;
    bool closed_ = false;
  };

  void former_loop();
  void worker_loop(std::size_t worker_index);

  std::shared_ptr<const dnn::Network> network_;
  ServerConfig config_;
  RequestQueue queue_;
  BatchQueue batch_queue_;

  // Cost-model plan applied to every worker context when the config
  // asked for auto threading (threads_per_worker == 0). Resolved once
  // in the constructor, before any worker thread starts.
  dnn::IntraopPlan intraop_plan_;
  bool intraop_auto_ = false;

  // Metric handles, resolved once at construction (OBSERVABILITY.md).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Gauge* batch_size_gauge_ = nullptr;
  obs::Stat* batch_fill_stat_ = nullptr;
  obs::Stat* queue_wait_stat_ = nullptr;
  obs::Stat* compute_stat_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;

  std::atomic<std::uint64_t> next_request_id_{0};
  std::uint64_t next_batch_id_ = 0;  // former thread only

  std::thread former_;
  std::vector<std::thread> workers_;
  std::mutex lifecycle_mutex_;
  bool stopped_ = false;
};

}  // namespace cf::serve
