// Tests for topologies (including the paper's published aggregate
// statistics), metrics, checkpoints and the SSGD trainer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "core/metrics.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "cosmo/simulation.hpp"
#include "data/dataset.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::core {
namespace {

TEST(Topology, Canonical128MatchesPaperAggregates) {
  // §III-A / §V-A: 7 conv + 3 FC layers, 3 avg pools, ~7 M parameters
  // (28.15 MB), 69.33 Gflop per sample with batch size 1.
  dnn::Network net = build_network(cosmoflow_128(), /*seed=*/1);

  int convs = 0, pools = 0, denses = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const std::string kind = net.layer(i).kind();
    convs += kind == "conv";
    pools += kind == "pool";
    denses += kind == "dense";
  }
  EXPECT_EQ(convs, 7);
  EXPECT_EQ(pools, 3);
  EXPECT_EQ(denses, 3);

  EXPECT_EQ(net.param_count(), 7054259);  // 28.2 MB vs paper's 28.15 MB
  const double gflop =
      static_cast<double>(net.flops(/*skip_first_bwd_data=*/true).total()) /
      1e9;
  EXPECT_NEAR(gflop, 69.33, 1.5);  // we land at 68.5

  EXPECT_EQ(net.output_shape(), tensor::Shape({3}));
  EXPECT_EQ(net.input_shape(), tensor::Shape({1, 128, 128, 128}));
}

TEST(Topology, ChannelCountsAreMultiplesOf16) {
  for (const ConvSpec& spec : cosmoflow_128().convs) {
    EXPECT_EQ(spec.out_channels % 16, 0);
  }
}

TEST(Topology, BaselineHasTwoOutputs) {
  dnn::Network net = build_network(cosmoflow_64_baseline(), 1);
  EXPECT_EQ(net.output_shape(), tensor::Shape({2}));
  EXPECT_EQ(net.input_shape(), tensor::Shape({1, 64, 64, 64}));
}

TEST(Topology, ScaledVariantsBuildAndRun) {
  runtime::ThreadPool pool(2);
  for (const std::int64_t dhw : {16, 32}) {
    dnn::Network net = build_network(cosmoflow_scaled(dhw), 3);
    dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
    tensor::Tensor input(net.input_shape());
    runtime::Rng rng(4);
    tensor::fill_normal(input, rng, 0.0f, 1.0f);
    const tensor::Tensor& out = ctx.forward(input, pool);
    EXPECT_EQ(out.shape(), tensor::Shape({3}));
    for (const float v : out.values()) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_THROW(cosmoflow_scaled(20), std::invalid_argument);
}

TEST(Topology, InitializationIsDeterministic) {
  dnn::Network a = build_network(cosmoflow_scaled(16), 9);
  dnn::Network b = build_network(cosmoflow_scaled(16), 9);
  dnn::Network c = build_network(cosmoflow_scaled(16), 10);
  std::vector<float> pa(static_cast<std::size_t>(a.param_count()));
  std::vector<float> pb(pa.size());
  std::vector<float> pc(pa.size());
  a.copy_params_to(pa);
  b.copy_params_to(pb);
  c.copy_params_to(pc);
  EXPECT_EQ(tensor::max_abs_diff(pa, pb), 0.0f);
  EXPECT_GT(tensor::max_abs_diff(pa, pc), 0.0f);
}

TEST(Metrics, RelativeErrorMatchesPaperFormula) {
  std::vector<Prediction> preds(1);
  preds[0].predicted = {0.30, 0.80, 1.00};
  preds[0].truth = {0.33, 0.80, 0.90};
  const auto err = mean_relative_error(preds);
  EXPECT_NEAR(err[0], 0.03 / 0.30, 1e-12);
  EXPECT_NEAR(err[1], 0.0, 1e-12);
  EXPECT_NEAR(err[2], 0.10 / 1.00, 1e-12);
}

TEST(Metrics, RmseAndCorrelation) {
  std::vector<Prediction> preds;
  for (int i = 0; i < 10; ++i) {
    Prediction p;
    const double t = 0.1 * i;
    p.truth = {t, t, t};
    p.predicted = {t + 0.1, t, -t};  // biased, perfect, anti-correlated
    preds.push_back(p);
  }
  const auto r = rmse(preds);
  EXPECT_NEAR(r[0], 0.1, 1e-9);
  EXPECT_NEAR(r[1], 0.0, 1e-9);
  const auto c = correlation(preds);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 1.0, 1e-9);
  EXPECT_NEAR(c[2], -1.0, 1e-9);
}

TEST(Metrics, RejectsEmptyAndZeroEstimates) {
  EXPECT_THROW(mean_relative_error({}), std::invalid_argument);
  std::vector<Prediction> zero(1);
  zero[0].predicted = {0.0, 1.0, 1.0};
  zero[0].truth = {0.1, 1.0, 1.0};
  EXPECT_THROW(mean_relative_error(zero), std::invalid_argument);
}

TEST(Checkpoint, RoundTripRestoresPredictions) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cf_ckpt_test.bin").string();
  dnn::Network net = build_network(cosmoflow_scaled(16), 21);
  dnn::ExecContext ctx = net.make_context(dnn::ExecMode::kInference);
  runtime::ThreadPool pool(1);
  tensor::Tensor input(net.input_shape());
  runtime::Rng rng(22);
  tensor::fill_normal(input, rng, 0.0f, 1.0f);
  const std::vector<float> before = ctx.forward(input, pool).to_vector();

  save_checkpoint(path, "cosmoflow-16", net);

  dnn::Network fresh = build_network(cosmoflow_scaled(16), 999);
  load_checkpoint(path, "cosmoflow-16", fresh);
  dnn::ExecContext fresh_ctx =
      fresh.make_context(dnn::ExecMode::kInference);
  const std::vector<float> after =
      fresh_ctx.forward(input, pool).to_vector();
  EXPECT_EQ(tensor::max_abs_diff(before, after), 0.0f);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsWrongTopologyAndCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cf_ckpt_test2.bin")
          .string();
  dnn::Network net = build_network(cosmoflow_scaled(16), 21);
  save_checkpoint(path, "cosmoflow-16", net);

  dnn::Network other = build_network(cosmoflow_scaled(16), 1);
  EXPECT_THROW(load_checkpoint(path, "cosmoflow-32", other),
               std::runtime_error);

  // Corrupt one parameter byte.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    const char corrupt = 0x5A;
    f.write(&corrupt, 1);
  }
  EXPECT_THROW(load_checkpoint(path, "cosmoflow-16", other),
               std::runtime_error);
  std::filesystem::remove(path);
}

// --- Trainer ---------------------------------------------------------

/// Synthetic learnable dataset: the volume mean encodes the targets.
std::vector<data::Sample> make_learnable_samples(std::size_t count,
                                                 std::int64_t dhw,
                                                 std::uint64_t seed) {
  std::vector<data::Sample> samples;
  samples.reserve(count);
  runtime::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const float level = rng.uniform();
    data::Sample s;
    s.volume = tensor::Tensor(tensor::Shape{1, dhw, dhw, dhw});
    for (float& v : s.volume.values()) {
      v = level + 0.05f * rng.normal();
    }
    s.target = {level, 1.0f - level, 0.5f * level + 0.25f};
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Trainer, LossDecreasesOnLearnableProblem) {
  data::InMemorySource train(make_learnable_samples(32, 16, 1));
  data::InMemorySource val(make_learnable_samples(8, 16, 2));

  TrainerConfig config;
  config.nranks = 1;
  config.epochs = 5;
  config.base_lr = 5e-3;
  config.min_lr = 1e-4;
  Trainer trainer(cosmoflow_scaled(16), train, val, config);
  const auto stats = trainer.run();
  ASSERT_EQ(stats.size(), 5u);
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss);
  EXPECT_LT(stats.back().val_loss, stats.front().val_loss);

  // Must beat the mean predictor (target variance is 1/12 for uniform
  // levels; the two derived targets scale that).
  EXPECT_LT(stats.back().val_loss, 0.05);
}

TEST(Trainer, ReplicasStayIdenticalAcrossRanks) {
  data::InMemorySource train(make_learnable_samples(16, 16, 3));
  data::InMemorySource val(make_learnable_samples(4, 16, 4));

  TrainerConfig config;
  config.nranks = 4;
  config.epochs = 2;
  Trainer trainer(cosmoflow_scaled(16), train, val, config);
  trainer.run();

  std::vector<float> p0(
      static_cast<std::size_t>(trainer.network(0).param_count()));
  trainer.network(0).copy_params_to(p0);
  for (int r = 1; r < 4; ++r) {
    std::vector<float> pr(p0.size());
    trainer.network(r).copy_params_to(pr);
    EXPECT_EQ(tensor::max_abs_diff(p0, pr), 0.0f) << "rank " << r;
  }
}

TEST(Trainer, DeterministicAcrossRuns) {
  const auto run_once = [] {
    data::InMemorySource train(make_learnable_samples(16, 16, 5));
    data::InMemorySource val(make_learnable_samples(4, 16, 6));
    TrainerConfig config;
    config.nranks = 2;
    config.epochs = 2;
    Trainer trainer(cosmoflow_scaled(16), train, val, config);
    const auto stats = trainer.run();
    return stats.back().train_loss;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Trainer, GlobalBatchGrowsWithRanks) {
  // Same data, same epochs: more ranks -> fewer optimizer steps ->
  // slower convergence per epoch (the §VII-A observation that the
  // 8192-node run lags the 2048-node run).
  const auto final_loss = [](int nranks) {
    data::InMemorySource train(make_learnable_samples(64, 16, 7));
    data::InMemorySource val(make_learnable_samples(8, 16, 8));
    TrainerConfig config;
    config.nranks = nranks;
    config.epochs = 4;
    Trainer trainer(cosmoflow_scaled(16), train, val, config);
    return trainer.run().back().train_loss;
  };
  const double small_batch = final_loss(1);
  const double large_batch = final_loss(16);
  EXPECT_LT(small_batch, large_batch);
}

TEST(Trainer, EvaluateReturnsPhysicalUnits) {
  data::InMemorySource train(make_learnable_samples(16, 16, 9));
  data::InMemorySource val(make_learnable_samples(4, 16, 10));
  TrainerConfig config;
  config.nranks = 1;
  config.epochs = 1;
  Trainer trainer(cosmoflow_scaled(16), train, val, config);
  trainer.run();

  const auto preds = trainer.evaluate(val);
  ASSERT_EQ(preds.size(), 4u);
  const cosmo::ParamRanges ranges;
  for (const Prediction& p : preds) {
    // Truths were encoded from [0,1] targets, so they map inside the
    // physical ranges.
    EXPECT_GE(p.truth[0], ranges.omega_m_lo - 1e-6);
    EXPECT_LE(p.truth[0], ranges.omega_m_hi + 1e-6);
    EXPECT_GE(p.truth[1], ranges.sigma8_lo - 1e-6);
    EXPECT_LE(p.truth[2], ranges.ns_hi + 1e-6);
  }
}

TEST(Trainer, BreakdownCoversMajorCategories) {
  data::InMemorySource train(make_learnable_samples(8, 16, 11));
  data::InMemorySource val(make_learnable_samples(2, 16, 12));
  TrainerConfig config;
  config.nranks = 2;
  config.epochs = 1;
  Trainer trainer(cosmoflow_scaled(16), train, val, config);
  trainer.run();
  const CategoryBreakdown breakdown = trainer.breakdown();
  EXPECT_GT(breakdown.seconds.at("conv"), 0.0);
  EXPECT_GT(breakdown.seconds.at("dense"), 0.0);
  EXPECT_GT(breakdown.seconds.at("optimizer"), 0.0);
  EXPECT_GT(breakdown.seconds.at("comm"), 0.0);
  EXPECT_GT(breakdown.total, 0.0);
}

TEST(Trainer, SgdAblationRuns) {
  data::InMemorySource train(make_learnable_samples(16, 16, 13));
  data::InMemorySource val(make_learnable_samples(4, 16, 14));
  TrainerConfig config;
  config.nranks = 1;
  config.epochs = 3;
  config.optimizer = OptimizerKind::kSgdMomentum;
  config.base_lr = 1e-3;
  config.min_lr = 1e-4;
  Trainer trainer(cosmoflow_scaled(16), train, val, config);
  const auto stats = trainer.run();
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss * 2.0);
  for (const auto& s : stats) EXPECT_TRUE(std::isfinite(s.train_loss));
}

TEST(Trainer, RejectsBadConfigurations) {
  data::InMemorySource train(make_learnable_samples(4, 16, 15));
  data::InMemorySource val(make_learnable_samples(2, 16, 16));
  TrainerConfig config;
  config.nranks = 8;  // more ranks than samples
  EXPECT_THROW(Trainer(cosmoflow_scaled(16), train, val, config),
               std::invalid_argument);
  config.nranks = 0;
  EXPECT_THROW(Trainer(cosmoflow_scaled(16), train, val, config),
               std::invalid_argument);
}

TEST(Trainer, RunTwiceThrows) {
  data::InMemorySource train(make_learnable_samples(4, 16, 17));
  data::InMemorySource val(make_learnable_samples(2, 16, 18));
  TrainerConfig config;
  config.epochs = 1;
  Trainer trainer(cosmoflow_scaled(16), train, val, config);
  trainer.run();
  EXPECT_THROW(trainer.run(), std::logic_error);
}

}  // namespace
}  // namespace cf::core
