#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cf::obs {

namespace {

std::uint64_t steady_ns_since_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void copy_label(char* dst, std::size_t capacity, const char* src) {
  std::strncpy(dst, src == nullptr ? "" : src, capacity - 1);
  dst[capacity - 1] = '\0';
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

}  // namespace

/// One lease per thread: caches the ring acquired from the tracer the
/// thread last recorded into, and returns it for reuse at thread exit.
struct ThreadBufferLease {
  Tracer* owner = nullptr;
  Tracer::ThreadBuffer* buffer = nullptr;
  ~ThreadBufferLease() {
    if (owner != nullptr && buffer != nullptr) {
      owner->release_buffer(buffer);
    }
  }
};

namespace {
thread_local ThreadBufferLease tls_lease;
}  // namespace

Tracer& Tracer::global() {
  // Leaked: must outlive every thread-exit lease release.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::size_t Tracer::default_ring_capacity() {
  if (const char* env = std::getenv("COSMOFLOW_TRACE_CAPACITY")) {
    const long v = std::atol(env);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  return 16384;
}

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(std::max<std::size_t>(2, ring_capacity)) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_ns() { return steady_ns_since_epoch(); }

Tracer::ThreadBuffer* Tracer::acquire_buffer() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    if (!buffer->in_use) {
      buffer->in_use = true;
      return buffer.get();
    }
  }
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(ring_capacity_, next_tid_++));
  buffers_.back()->in_use = true;
  return buffers_.back().get();
}

void Tracer::release_buffer(ThreadBuffer* buffer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  buffer->in_use = false;  // events survive for export; ring is reusable
}

Tracer::ThreadBuffer* Tracer::local_buffer() {
  ThreadBufferLease& lease = tls_lease;
  if (lease.owner != this) {
    if (lease.owner != nullptr && lease.buffer != nullptr) {
      lease.owner->release_buffer(lease.buffer);
    }
    lease.buffer = acquire_buffer();
    lease.owner = this;
  }
  return lease.buffer;
}

void Tracer::push(ThreadBuffer& buf, const char* name, const char* category,
                  std::uint64_t ts_ns, std::uint64_t dur_ns) {
  const std::size_t capacity = buf.ring.size();
  const std::size_t head = buf.head.load(std::memory_order_relaxed);
  TraceEvent& event = buf.ring[head];
  copy_label(event.name, TraceEvent::kNameCapacity, name);
  copy_label(event.category, TraceEvent::kCategoryCapacity, category);
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.tid = buf.tid;
  buf.head.store((head + 1) % capacity, std::memory_order_relaxed);
  const std::size_t count = buf.count.load(std::memory_order_relaxed);
  if (count < capacity) {
    buf.count.store(count + 1, std::memory_order_relaxed);
  } else {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  push(*local_buffer(), name, category, ts_ns, dur_ns);
}

void Tracer::record_at(const char* name, const char* category,
                       std::uint32_t tid, std::uint64_t ts_ns,
                       std::uint64_t dur_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ThreadBuffer* target = nullptr;
  for (auto& buffer : buffers_) {
    if (buffer->tid == tid) {
      target = buffer.get();
      break;
    }
  }
  if (target == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>(ring_capacity_, tid));
    next_tid_ = std::max(next_tid_, tid + 1);
    target = buffers_.back().get();
  }
  push(*target, name, category, ts_ns, dur_ns);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::size_t capacity = buffer->ring.size();
      const std::size_t count =
          std::min(buffer->count.load(std::memory_order_relaxed), capacity);
      const std::size_t head = buffer->head.load(std::memory_order_relaxed);
      const std::size_t oldest = (head + capacity - count) % capacity;
      for (std::size_t i = 0; i < count; ++i) {
        events.push_back(buffer->ring[(oldest + i) % capacity]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.tid < b.tid;
                   });
  return events;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->head.store(0, std::memory_order_relaxed);
    buffer->count.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buffer[64];
  bool first = true;
  for (const TraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.category);
    out += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(event.tid);
    // chrome://tracing expects microseconds.
    std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f,\"dur\":%.3f}",
                  static_cast<double>(event.ts_ns) / 1000.0,
                  static_cast<double>(event.dur_ns) / 1000.0);
    out += buffer;
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_chrome_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

}  // namespace cf::obs
