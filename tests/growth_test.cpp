// Tests for the linear growth factor, the Eisenstein-Hu transfer
// option, and the multi-redshift snapshot extension (§VII-B future
// work implemented here).
#include <gtest/gtest.h>

#include <cmath>

#include "cosmo/growth.hpp"
#include "cosmo/power_spectrum.hpp"
#include "cosmo/simulation.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf::cosmo {
namespace {

TEST(GrowthFactor, NormalizedToUnityToday) {
  const GrowthFactor growth(0.3089);
  EXPECT_NEAR(growth.at_scale_factor(1.0), 1.0, 1e-12);
  EXPECT_NEAR(growth.at_redshift(0.0), 1.0, 1e-12);
}

TEST(GrowthFactor, EinsteinDeSitterLimitIsLinearInA) {
  // OmegaM = 1: D(a) = a exactly.
  const GrowthFactor growth(1.0);
  for (const double a : {0.1, 0.25, 0.5, 0.8}) {
    EXPECT_NEAR(growth.at_scale_factor(a), a, 2e-3 * a) << "a = " << a;
  }
}

TEST(GrowthFactor, LambdaSuppressesGrowth) {
  // With dark energy, structure grows more slowly at late times, so
  // D(a) > a for a < 1 (the past field was *less* suppressed relative
  // to today than in EdS).
  const GrowthFactor growth(0.3089);
  for (const double a : {0.2, 0.5, 0.8}) {
    EXPECT_GT(growth.at_scale_factor(a), a) << "a = " << a;
  }
}

TEST(GrowthFactor, MonotonicallyIncreasing) {
  const GrowthFactor growth(0.3089);
  double previous = 0.0;
  for (double a = 0.05; a <= 1.0; a += 0.05) {
    const double d = growth.at_scale_factor(a);
    EXPECT_GT(d, previous);
    previous = d;
  }
}

TEST(GrowthFactor, KnownLcdmValue) {
  // For OmegaM ~ 0.31 the standard result is D(z=1)/D(0) ~ 0.61-0.62.
  const GrowthFactor growth(0.31);
  EXPECT_NEAR(growth.at_redshift(1.0), 0.615, 0.02);
}

TEST(GrowthFactor, RejectsBadArguments) {
  EXPECT_THROW(GrowthFactor(0.0), std::invalid_argument);
  EXPECT_THROW(GrowthFactor(1.5), std::invalid_argument);
  const GrowthFactor growth(0.3);
  EXPECT_THROW(growth.at_scale_factor(0.0), std::invalid_argument);
  EXPECT_THROW(growth.at_scale_factor(1.5), std::invalid_argument);
  EXPECT_THROW(growth.at_redshift(-1.0), std::invalid_argument);
}

TEST(EisensteinHu, NormalizedAndDecaying) {
  const PowerSpectrum ps(CosmoParams{}, TransferModel::kEisensteinHu);
  EXPECT_NEAR(ps.transfer(1e-5), 1.0, 5e-3);
  double previous = ps.transfer(1e-3);
  for (double k = 2e-3; k < 50.0; k *= 2.0) {
    const double t = ps.transfer(k);
    EXPECT_LT(t, previous + 1e-12) << "k = " << k;
    previous = t;
  }
  // sigma8 normalization holds for the EH model too.
  EXPECT_NEAR(ps.sigma_r(8.0), ps.params().sigma8,
              1e-4 * ps.params().sigma8);
}

TEST(EisensteinHu, BaryonsSuppressSmallScalePower) {
  // Relative to a baryon-free model, baryons damp the transfer at
  // k ~ 0.1-1 h/Mpc.
  CosmoParams with_baryons;
  CosmoParams few_baryons;
  few_baryons.omega_b = 0.005;
  const PowerSpectrum eh(with_baryons, TransferModel::kEisensteinHu);
  const PowerSpectrum low(few_baryons, TransferModel::kEisensteinHu);
  EXPECT_LT(eh.transfer(0.5), low.transfer(0.5));
}

TEST(EisensteinHu, CloseToBbksShape) {
  // The two fits agree to tens of percent over the dynamic range used
  // by the simulations.
  const PowerSpectrum bbks(CosmoParams{}, TransferModel::kBbks);
  const PowerSpectrum eh(CosmoParams{}, TransferModel::kEisensteinHu);
  for (double k = 0.01; k < 5.0; k *= 3.0) {
    const double ratio = eh.transfer(k) / bbks.transfer(k);
    EXPECT_GT(ratio, 0.5) << "k = " << k;
    EXPECT_LT(ratio, 2.0) << "k = " << k;
  }
}

TEST(PowerSpectrum, RejectsUnphysicalBaryons) {
  CosmoParams bad;
  bad.omega_b = 0.4;  // > OmegaM
  EXPECT_THROW(PowerSpectrum(bad, TransferModel::kEisensteinHu),
               std::invalid_argument);
}

TEST(Simulation, HigherRedshiftSnapshotsAreSmoother) {
  // The same initial conditions at z = 3 must show weaker clustering
  // than at z = 0 (growth suppression) — the multi-redshift extension.
  SimulationConfig z0;
  z0.grid = {16, 128.0};
  z0.voxels = 16;
  SimulationConfig z3 = z0;
  z3.redshift = 3.0;
  runtime::ThreadPool pool(2);
  const Universe early = Simulation(z3).run(CosmoParams{}, 7, pool);
  const Universe today = Simulation(z0).run(CosmoParams{}, 7, pool);

  const auto count_variance = [](const tensor::Tensor& v) {
    const double mean =
        tensor::sum(v.values()) / static_cast<double>(v.size());
    double acc = 0.0;
    for (const float c : v.values()) acc += (c - mean) * (c - mean);
    return acc / static_cast<double>(v.size());
  };
  EXPECT_LT(count_variance(early.voxels), count_variance(today.voxels));
}

TEST(Simulation, EisensteinHuTransferOptionRuns) {
  SimulationConfig config;
  config.grid = {16, 128.0};
  config.voxels = 16;
  config.transfer = TransferModel::kEisensteinHu;
  runtime::ThreadPool pool(1);
  const Universe universe = Simulation(config).run(CosmoParams{}, 9, pool);
  EXPECT_NEAR(tensor::sum(universe.voxels.values()),
              16.0 * 16.0 * 16.0, 1.0);  // mass conserved
}

}  // namespace
}  // namespace cf::cosmo
