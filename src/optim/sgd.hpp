// Plain SGD with momentum — the ablation baseline against Adam+LARC
// (the paper motivates LARC by the instability of plain large-batch
// SGD; bench/bench_ablation compares the two).
#pragma once

#include <memory>
#include <vector>

#include "dnn/layer.hpp"
#include "optim/lr_schedule.hpp"

namespace cf::optim {

class SgdMomentum {
 public:
  /// Binds to the network's parameter tensors (arena views after
  /// Network::finalize(), like LarcAdam).
  SgdMomentum(std::vector<dnn::ParamView> params, double momentum,
              std::shared_ptr<const LrSchedule> schedule);

  void step();

  std::int64_t steps_taken() const noexcept { return step_; }

 private:
  std::vector<dnn::ParamView> params_;
  std::vector<std::vector<float>> velocity_;
  double momentum_;
  std::shared_ptr<const LrSchedule> schedule_;
  std::int64_t step_ = 0;
};

}  // namespace cf::optim
