// The load-bearing property of the overlapped communication path:
// bucketed async gradient aggregation must produce models *bitwise
// identical* to the synchronous allreduce, for every optimizer, for
// every rank count, and for every way of cutting the gradient arena
// into buckets. The async helper thread reduces each bucket with the
// same fixed-rank-order chunk arithmetic as the synchronous path and
// per-element arithmetic is independent of bucket boundaries, so any
// divergence here is a real ordering or data race bug.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "tensor/tensor_ops.hpp"

namespace cf {
namespace {

struct OverlapCase {
  core::OptimizerKind optimizer;
  int nranks;
};

struct TrainResult {
  std::vector<float> params;
  double train_loss = 0.0;
};

class OverlapBitwise : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(OverlapBitwise, MatchesSynchronousAfterThreeEpochs) {
  const OverlapCase& c = GetParam();
  runtime::ThreadPool gen_pool;
  core::DatasetGenConfig gen;
  gen.simulations = 6;
  gen.sim.grid = {16, 64.0};
  gen.sim.voxels = 16;
  gen.seed = 51;
  core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);
  const data::InMemorySource train(std::move(dataset.train));
  const data::InMemorySource val(std::move(dataset.val));

  const auto run = [&](bool overlap, std::size_t bucket_bytes) {
    core::TrainerConfig config;
    config.nranks = c.nranks;
    config.epochs = 3;
    config.optimizer = c.optimizer;
    config.overlap_comm = overlap;
    config.bucket_bytes = bucket_bytes;
    config.comm.chunk_elems = 256;  // multi-chunk buckets
    core::Trainer trainer(core::cosmoflow_scaled(8), train, val, config);
    TrainResult result;
    result.train_loss = trainer.run().back().train_loss;
    dnn::Network& net = trainer.network(0);
    result.params.resize(static_cast<std::size_t>(net.param_count()));
    net.copy_params_to(result.params);
    // Replicas must also agree with each other, not just with rank 0.
    std::vector<float> last(result.params.size());
    trainer.network(c.nranks - 1).copy_params_to(last);
    EXPECT_EQ(tensor::max_abs_diff(result.params, last), 0.0f);
    return result;
  };

  const TrainResult sync = run(/*overlap=*/false, 0);
  // Bucket-size extremes: 1 byte closes a bucket after every
  // parameterized layer; 1 GiB coalesces the whole arena into a single
  // bucket; 256 KiB sits in between.
  for (const std::size_t bucket_bytes :
       {std::size_t{1}, std::size_t{256} << 10, std::size_t{1} << 30}) {
    const TrainResult overlapped = run(/*overlap=*/true, bucket_bytes);
    ASSERT_EQ(sync.params.size(), overlapped.params.size());
    EXPECT_EQ(tensor::max_abs_diff(sync.params, overlapped.params), 0.0f)
        << "bucket_bytes " << bucket_bytes;
    EXPECT_EQ(sync.train_loss, overlapped.train_loss)
        << "bucket_bytes " << bucket_bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlapBitwise,
    ::testing::Values(
        OverlapCase{core::OptimizerKind::kAdamLarc, 1},
        OverlapCase{core::OptimizerKind::kAdamLarc, 4},
        OverlapCase{core::OptimizerKind::kAdam, 1},
        OverlapCase{core::OptimizerKind::kAdam, 4},
        OverlapCase{core::OptimizerKind::kSgdMomentum, 1},
        OverlapCase{core::OptimizerKind::kSgdMomentum, 4}),
    [](const ::testing::TestParamInfo<OverlapCase>& info) {
      std::string name;
      switch (info.param.optimizer) {
        case core::OptimizerKind::kAdamLarc: name = "adamlarc"; break;
        case core::OptimizerKind::kAdam: name = "adam"; break;
        case core::OptimizerKind::kSgdMomentum: name = "sgd"; break;
      }
      return name + "_ranks" + std::to_string(info.param.nranks);
    });

TEST(OverlapTelemetry, ReportsOverlapFractionAndHiddenSeconds) {
  runtime::ThreadPool gen_pool;
  core::DatasetGenConfig gen;
  gen.simulations = 4;
  gen.sim.grid = {16, 64.0};
  gen.sim.voxels = 16;
  gen.seed = 52;
  core::GeneratedDataset dataset = core::generate_dataset(gen, gen_pool);
  const data::InMemorySource train(std::move(dataset.train));
  const data::InMemorySource val(std::move(dataset.val));

  core::TrainerConfig config;
  config.nranks = 2;
  config.epochs = 1;
  config.overlap_comm = true;
  config.bucket_bytes = 64 << 10;
  core::Trainer trainer(core::cosmoflow_scaled(8), train, val, config);
  trainer.run();
  const core::CategoryBreakdown breakdown = trainer.breakdown();
  ASSERT_TRUE(breakdown.seconds.count("comm_hidden"));
  ASSERT_TRUE(breakdown.seconds.count("comm"));
  EXPECT_GE(breakdown.overlap_fraction, 0.0);
  EXPECT_LE(breakdown.overlap_fraction, 1.0);
}

}  // namespace
}  // namespace cf
