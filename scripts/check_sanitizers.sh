#!/usr/bin/env sh
# Sanitizer gates, unified: builds the repo with the requested
# sanitizer into build-<san>/ and runs the test suites that exercise
# the code that sanitizer is good at catching.
#
#   asan  — arena rebinding and the zero-free backward kernels: diff
#           ping-pong buffers, shared backward scratch, per-context
#           grad arenas, and the conv gather / pool direct-write
#           kernels whose correctness depends on exact in-bounds
#           full-coverage writes. The Precision suite rides this leg
#           with special weight: the bf16/int8 conversion kernels
#           (vectorized array converters, packed side arenas, the
#           widen-on-load forward paths) are exactly the
#           pointer-width-changing code ASan is good at.
#   tsan  — cross-thread hand-offs: the MlComm collectives and helper
#           thread (sync + async bucketed allreduce), ThreadPool
#           dispatch, the overlapped trainer step loop, the Context
#           suite's concurrent inference streams sharing one immutable
#           Network, and the serving path (client threads -> request
#           queue -> batch former -> worker streams) via the Serve
#           suites plus a bench_serve --smoke traffic run.
#   ubsan — pointer-arithmetic-heavy paths: fused conv/dense epilogue
#           kernels, blocked optimizer sweeps, layout/reorder code.
#
# Usage: check_sanitizers.sh [asan|tsan|ubsan|all] [repo_root]
set -eu

which="${1:-all}"
root="${2:-$(dirname "$0")/..}"
cd "$root" || exit 1

run_one() {
  san="$1"
  build_dir="build-$san"

  case "$san" in
    asan)
      cmake_flag="-DCOSMOFLOW_ASAN=ON"
      # halt_on_error stops at the first bad access;
      # detect_stack_use_after_return widens coverage to the kernels'
      # stack-local accumulator rows.
      env_name="ASAN_OPTIONS"
      env_value="halt_on_error=1 detect_stack_use_after_return=1"
      # Crc32c/Cfrecord/CfrecordFuzz ride this leg: the slice-by-8 and
      # SSE4.2 CRC kernels read the buffer 8 bytes at a time, mmap
      # views hand out raw page-cache pointers, and the fuzz suite's
      # corrupt length fields must never drive an out-of-bounds read
      # or oversized allocation.
      # Graph*.* rides every leg: slot-colored act/diff arenas, the
      # shared fan-in accumulation buffer, and shape-view weight
      # aliasing are all raw-offset arena arithmetic.
      filter='Memplan*.*:Network*.*:Context*.*:Blocked*.*:Shapes/FusedConvVsUnfused*.*:FusedDenseVsUnfused*.*:Fusion*.*:AvgPool*.*:Flatten*.*:Threads/ConvThreadInvariance*.*:Precision*.*:Intraop*.*:*/Intraop*.*:Graph*.*:Crc32c*.*:Cfrecord*.*:CfrecordFuzz*.*:SampleSerialization*.*:DataPath*.*'
      ;;
    tsan)
      cmake_flag="-DCOSMOFLOW_TSAN=ON"
      # halt_on_error makes the run fail on the first race instead of
      # only logging it; second_deadlock_stack improves lock-order
      # reports.
      env_name="TSAN_OPTIONS"
      env_value="halt_on_error=1 second_deadlock_stack=1"
      # Pipeline/PipelinePool/DataPath ride this leg: producer threads
      # racing on the ring reorder buffer, the mutex-guarded
      # SamplePool recycle path, and mapped shard readers shared
      # across I/O threads (concurrent const view_at).
      # Graph*.* rides this leg for the concurrent per-shape-context
      # smoke: parent + two shape views running inference from separate
      # threads over one shared weight arena
      # (GraphShapeView.ConcurrentPerShapeInference), plus the
      # multi-head serving path in GraphResidual.TrainsAndServes.
      filter='MlComm*.*:MlCommAsync*.*:ThreadPool*.*:OverlapBitwise*.*:OverlapTelemetry*.*:TrainerDeterminism*.*:Context.ConcurrentInferenceStreamsMatchSerial:Context.InferenceForwardBitwiseMatchesTraining:Serve*.*:Precision*.*:Intraop*.*:*/Intraop*.*:Graph*.*:Pipeline*.*:PipelinePool*.*:DataPath*.*'
      ;;
    ubsan)
      cmake_flag="-DCOSMOFLOW_UBSAN=ON"
      # halt_on_error turns the first report into a failure instead of
      # a log line; print_stacktrace makes it actionable.
      env_name="UBSAN_OPTIONS"
      env_value="halt_on_error=1 print_stacktrace=1"
      # The CRC kernels' word loads and the cfrecord framing offsets
      # are exactly the unsigned/pointer arithmetic UBSan checks.
      filter='Shapes/FusedConvVsUnfused*.*:FusedDenseVsUnfused*.*:Fusion*.*:Blocked*.*:Threads/ConvThreadInvariance*.*:Adam*.*:LarcFixture*.*:LarcAdamIntegration*.*:SgdMomentum*.*:Network*.*:Context*.*:Flatten*.*:Precision*.*:Intraop*.*:*/Intraop*.*:Graph*.*:Crc32c*.*:Cfrecord*.*:CfrecordFuzz*.*'
      ;;
    *)
      echo "unknown sanitizer '$san' (expected asan, tsan or ubsan)" >&2
      return 2
      ;;
  esac

  cmake -B "$build_dir" -S . \
    "$cmake_flag" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build_dir" --target cosmoflow_tests -j "$(nproc)"

  env "$env_name=$env_value" \
    "$build_dir/tests/cosmoflow_tests" --gtest_filter="$filter"

  # The serving path under real traffic: three short traffic phases
  # with client, former and worker threads all live at once. The third
  # run exercises the cost-model auto mode (--threads-per-worker=0):
  # plan resolution in the Server constructor plus grain-carrying
  # worker contexts, under the same concurrent traffic.
  if [ "$san" = "tsan" ]; then
    cmake --build "$build_dir" --target bench_serve -j "$(nproc)"
    env "$env_name=$env_value" "$build_dir/bench/bench_serve" --smoke
    env "$env_name=$env_value" "$build_dir/bench/bench_serve" --smoke \
      --precision=bf16
    env "$env_name=$env_value" "$build_dir/bench/bench_serve" --smoke \
      --threads-per-worker=0
  fi

  # The whole zero-copy data path under instrumentation: mmap parse,
  # CRC kernels, pooled ring, end-to-end byte-identity check across the
  # ablation grid. The TSan leg forces io_threads >= 2 so producers
  # genuinely race on the ring and the pool.
  cmake --build "$build_dir" --target bench_pipeline -j "$(nproc)"
  if [ "$san" = "tsan" ]; then
    env "$env_name=$env_value" "$build_dir/bench/bench_pipeline" --smoke \
      --io-threads=2
  else
    env "$env_name=$env_value" "$build_dir/bench/bench_pipeline" --smoke
  fi

  echo "$san: clean"
}

case "$which" in
  all)
    for san in asan tsan ubsan; do
      run_one "$san"
    done
    ;;
  asan|tsan|ubsan)
    run_one "$which"
    ;;
  *)
    echo "usage: check_sanitizers.sh [asan|tsan|ubsan|all] [repo_root]" >&2
    exit 2
    ;;
esac
