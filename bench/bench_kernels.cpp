// google-benchmark microbenchmarks for the compute primitives behind
// Table I: blocked vs reference 3D convolution (fwd / bww / bwd),
// average pooling, dense layers, leaky ReLU, and layout reorders.
#include <benchmark/benchmark.h>

#include "dnn/activations.hpp"
#include "dnn/avgpool3d.hpp"
#include "dnn/conv3d.hpp"
#include "dnn/dense.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/layout.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace cf;
using tensor::Shape;
using tensor::Tensor;

struct ConvFixture {
  ConvFixture(std::int64_t ic, std::int64_t oc, std::int64_t dhw,
              std::int64_t kernel, std::int64_t stride)
      : conv("conv", dnn::Conv3dConfig{ic, oc, kernel, stride,
                                       dnn::Padding::kSame}) {
    const Shape in = conv.input_is_plain()
                         ? Shape{ic, dhw, dhw, dhw}
                         : Shape{ic / 16, dhw, dhw, dhw, 16};
    conv.plan(in);
    runtime::Rng rng(1);
    conv.init_he(rng);
    src = Tensor(conv.input_shape());
    tensor::fill_normal(src, rng, 0.0f, 1.0f);
    dst = Tensor(conv.output_shape());
    ddst = Tensor(conv.output_shape());
    tensor::fill_normal(ddst, rng, 0.0f, 1.0f);
    dsrc = Tensor(conv.input_shape());
  }

  dnn::Conv3d conv;
  Tensor src, dst, ddst, dsrc;
  runtime::ThreadPool pool{1};
};

void BM_Conv3dForwardBlocked(benchmark::State& state) {
  ConvFixture f(state.range(0), state.range(1), state.range(2), 3, 1);
  for (auto _ : state) {
    f.conv.forward(f.src, f.dst, f.pool);
    benchmark::DoNotOptimize(f.dst.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(f.conv.flops().fwd) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv3dForwardBlocked)
    ->Args({1, 16, 32})    // first layer
    ->Args({16, 32, 32})   // early layer
    ->Args({64, 128, 8})   // late layer
    ->Unit(benchmark::kMillisecond);

void BM_Conv3dBackward(benchmark::State& state) {
  ConvFixture f(state.range(0), state.range(1), state.range(2), 3, 1);
  f.conv.forward(f.src, f.dst, f.pool);
  const bool need_dsrc = !f.conv.input_is_plain();
  for (auto _ : state) {
    f.conv.backward(f.src, f.ddst, f.dsrc, need_dsrc, f.pool);
    benchmark::DoNotOptimize(f.dsrc.data());
  }
  const auto flops = f.conv.flops();
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(flops.bwd_weights +
                          (need_dsrc ? flops.bwd_data : 0)) *
          state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv3dBackward)
    ->Args({1, 16, 32})
    ->Args({16, 32, 32})
    ->Args({64, 128, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Conv3dForwardReference(benchmark::State& state) {
  const std::int64_t ic = state.range(0);
  const std::int64_t oc = state.range(1);
  const std::int64_t dhw = state.range(2);
  runtime::Rng rng(2);
  Tensor src(Shape{ic, dhw, dhw, dhw});
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor weights(Shape{oc, ic, 3, 3, 3});
  tensor::fill_normal(weights, rng, 0.0f, 0.1f);
  Tensor bias(Shape{oc});
  const dnn::PadSpec pad = dnn::resolve_pad(dnn::Padding::kSame, dhw, 3, 1);
  Tensor dst(Shape{oc, dhw, dhw, dhw});
  for (auto _ : state) {
    conv3d_forward_reference(src, weights, bias, 1, pad, pad, pad, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * dhw * dhw * dhw * oc * ic * 27 * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv3dForwardReference)
    ->Args({16, 32, 16})
    ->Unit(benchmark::kMillisecond);

void BM_AvgPool3dForward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  const std::int64_t dhw = state.range(1);
  dnn::AvgPool3d layer("pool", dnn::AvgPool3dConfig{2, 2});
  layer.plan(Shape{channels / 16, dhw, dhw, dhw, 16});
  runtime::Rng rng(3);
  Tensor src(layer.input_shape());
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor dst(layer.output_shape());
  runtime::ThreadPool pool(1);
  for (auto _ : state) {
    layer.forward(src, dst, pool);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * src.size() * sizeof(float));
}
BENCHMARK(BM_AvgPool3dForward)
    ->Args({16, 64})
    ->Args({32, 32})
    ->Unit(benchmark::kMillisecond);

void BM_DenseForward(benchmark::State& state) {
  const std::int64_t in = state.range(0);
  const std::int64_t out = state.range(1);
  dnn::Dense layer("fc", in, out);
  layer.plan(Shape{in});
  runtime::Rng rng(4);
  layer.init_xavier(rng);
  Tensor src(Shape{in});
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor dst(Shape{out});
  runtime::ThreadPool pool(1);
  for (auto _ : state) {
    layer.forward(src, dst, pool);
    benchmark::DoNotOptimize(dst.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * in * out * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseForward)
    ->Args({8192, 656})
    ->Args({656, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_LeakyRelu(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  dnn::LeakyRelu layer("act", 0.01f);
  layer.plan(Shape{n});
  runtime::Rng rng(5);
  Tensor src(Shape{n});
  tensor::fill_normal(src, rng, 0.0f, 1.0f);
  Tensor dst(Shape{n});
  runtime::ThreadPool pool(1);
  for (auto _ : state) {
    layer.forward(src, dst, pool);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(float) * 2);
}
BENCHMARK(BM_LeakyRelu)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_LayoutReorder(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  const std::int64_t dhw = state.range(1);
  runtime::Rng rng(6);
  Tensor plain(Shape{channels, dhw, dhw, dhw});
  tensor::fill_normal(plain, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor blocked = tensor::to_blocked_activation(plain);
    benchmark::DoNotOptimize(blocked.data());
  }
  state.SetBytesProcessed(state.iterations() * plain.size() *
                          sizeof(float));
}
BENCHMARK(BM_LayoutReorder)->Args({16, 64})->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
