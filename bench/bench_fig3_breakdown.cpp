// Fig 3 reproduction: time breakdown of the CosmoFlow application by
// stage — 3D convolutions, non-convolutional compute (pooling, dense,
// element-wise ops, reorders), optimizer, gradient-aggregation
// communication, and unhidden I/O wait.
//
// The paper profiles one KNL node: conv kernels dominate, followed by
// non-convolutional compute and framework overheads; the CPE ML Plugin
// threads mostly spin at single-node scale. Here the same breakdown is
// measured by instrumented training of the scaled network on simulated
// data, twice: once with the sequential allreduce-after-backward step
// and once with the default overlapped path (bucketed async allreduce
// launched during backprop), so the exposed-communication saving and
// the overlap fraction are reported side by side. --sim-comm-us adds a
// per-chunk delay to every reduction so the comm/compute ratio of a
// real interconnect can be dialed in on a single node.
//
// By default Conv3d/Dense → LeakyRelu pairs are fused into the
// producer kernels' epilogues (the standalone "element-wise" stage
// collapses to zero and its time melts into conv/dense); --no-fusion
// restores the unfused graph so the old breakdown shape — and the cost
// of the extra activation sweeps — stays measurable.
//
// --threads-per-rank sizes each rank's private intra-op ThreadPool
// (default 1 = serial kernels, the historical shape); 0 engages the
// cost-model auto mode — the trainer budgets hardware_threads / ranks
// and takes the dnn::CostModel's per-layer grains (DESIGN.md §2.6).
// Either way the step stream is bitwise identical to the serial one.
//
//   ./bench_fig3_breakdown [--dhw=32] [--preset=NAME] [--ranks=4]
//                          [--epochs=2] [--sim-comm-us=100]
//                          [--bucket-kb=256] [--threads-per-rank=1]
//                          [--no-fusion] [--no-memplan]
//                          [--trace=trace.json] [--json=BENCH_fig3.json]
//
// --preset picks a stock topology by name (core::preset_topology;
// cosmoflow-128 is the paper's canonical network) and sizes the
// generated dataset to match; without it --dhw selects the scaled
// variant for that input size.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/dataset_gen.hpp"
#include "core/topology.hpp"
#include "core/trainer.hpp"
#include "obs/jsonl.hpp"
#include "obs/telemetry.hpp"

#ifndef COSMOFLOW_GIT_SHA
#define COSMOFLOW_GIT_SHA "unknown"
#endif

int main(int argc, char** argv) {
  using namespace cf;
  std::int64_t dhw = 32;
  int ranks = 4;
  int epochs = 2;
  long sim_comm_us = 100;
  long bucket_kb = 256;
  long threads_per_rank = 1;  // 0 = cost-model auto (DESIGN.md §2.6)
  bool fusion = true;
  bool memplan = true;
  std::string trace_path;
  std::string json_path;
  std::string preset;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dhw=", 6) == 0) dhw = std::atoll(argv[i] + 6);
    if (std::strncmp(argv[i], "--preset=", 9) == 0) preset = argv[i] + 9;
    if (std::strncmp(argv[i], "--ranks=", 8) == 0) {
      ranks = std::atoi(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--sim-comm-us=", 14) == 0) {
      sim_comm_us = std::atol(argv[i] + 14);
    }
    if (std::strncmp(argv[i], "--bucket-kb=", 12) == 0) {
      bucket_kb = std::atol(argv[i] + 12);
    }
    if (std::strncmp(argv[i], "--threads-per-rank=", 19) == 0) {
      threads_per_rank = std::atol(argv[i] + 19);
    }
    if (std::strcmp(argv[i], "--no-fusion") == 0) fusion = false;
    if (std::strcmp(argv[i], "--no-memplan") == 0) memplan = false;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("=== bench_fig3_breakdown: single-node profile by stage "
              "===\n\n");

  core::TopologyConfig topology;
  try {
    topology = preset.empty() ? core::cosmoflow_scaled(dhw)
                              : core::preset_topology(preset);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  dhw = topology.input_dhw;  // the generated dataset must match

  runtime::ThreadPool pool;
  core::DatasetGenConfig gen;
  gen.simulations = 8;
  gen.sim.grid = {2 * dhw, 4.0 * static_cast<double>(dhw)};
  gen.sim.voxels = 2 * dhw;
  gen.seed = 3;
  core::GeneratedDataset dataset = core::generate_dataset(gen, pool);

  data::InMemorySource train(std::move(dataset.train));
  data::InMemorySource val(std::move(dataset.val));

  const auto make_config = [&](bool overlap) {
    core::TrainerConfig config;
    config.nranks = ranks;
    config.epochs = epochs;
    config.pipeline.io_threads = 1;
    config.overlap_comm = overlap;
    config.bucket_bytes = static_cast<std::size_t>(bucket_kb) * 1024;
    config.comm.simulated_chunk_delay =
        std::chrono::microseconds(sim_comm_us);
    config.fuse_eltwise = fusion;
    config.memplan = memplan;
    config.threads_per_rank =
        threads_per_rank < 0 ? 1
                             : static_cast<std::size_t>(threads_per_rank);
    return config;
  };

  // Baseline: sequential allreduce after backward; its entire comm
  // time sits on the critical path.
  core::Trainer baseline(topology, train, val,
                         make_config(/*overlap=*/false));
  std::printf("sequential baseline: %s, %d ranks x %d epochs on %zu "
              "samples (sim comm %ld us/chunk)...\n",
              baseline.topology().name.c_str(), ranks, epochs,
              train.size(), sim_comm_us);
  baseline.run();
  const core::CategoryBreakdown sync_breakdown = baseline.breakdown();
  const double sync_comm = sync_breakdown.seconds.at("comm");

  // Measured run: overlapped bucketed allreduce (the default path).
  core::Trainer trainer(topology, train, val,
                        make_config(/*overlap=*/true));
  std::printf("overlapped run:      %s, %d ranks x %d epochs, "
              "%ld KiB buckets, eltwise fusion %s, memory plan %s, "
              "%s intra-op thread(s)/rank...\n\n",
              trainer.topology().name.c_str(), ranks, epochs, bucket_kb,
              fusion ? "ON" : "OFF (--no-fusion)",
              memplan ? "ON" : "OFF (--no-memplan)",
              threads_per_rank == 0
                  ? "auto (cost model)"
                  : std::to_string(threads_per_rank).c_str());
#if COSMOFLOW_TELEMETRY_ENABLED
  obs::Tracer::global().clear();
#endif
  const auto stats = trainer.run();

  const core::CategoryBreakdown breakdown = trainer.breakdown();
  // comm_hidden ran concurrently with backprop — it is not part of the
  // critical-path accounting, so "other" excludes it.
  double accounted = 0.0;
  for (const auto& [category, seconds] : breakdown.seconds) {
    if (category != "comm_hidden") accounted += seconds;
  }
  std::printf("%-22s %10s %8s\n", "stage (rank 0)", "seconds", "share");
  const auto row = [&](const char* name, double seconds) {
    std::printf("%-22s %10.3f %7.1f%%\n", name, seconds,
                100.0 * seconds / breakdown.total);
  };
  row("3D convolutions", breakdown.seconds.at("conv"));
  row("pooling", breakdown.seconds.at("pool"));
  row("dense layers", breakdown.seconds.at("dense"));
  row(fusion ? "element-wise (fused)" : "element-wise (lrelu)",
      breakdown.seconds.at("activation"));
  row("layout reorders", breakdown.seconds.at("reorder"));
  row("optimizer (Adam+LARC)", breakdown.seconds.at("optimizer"));
  row("comm (exposed)", breakdown.seconds.at("comm"));
  row("I/O wait (unhidden)", breakdown.seconds.at("io_wait"));
  row("other (framework)", breakdown.total - accounted);
  std::printf("%-22s %10.3f\n", "walltime", breakdown.total);
  std::printf("%-22s %10.3f   (concurrent with backprop, off the "
              "critical path)\n",
              "comm (hidden)", breakdown.seconds.at("comm_hidden"));

  std::printf("\noverlap vs sequential (rank 0):\n");
  std::printf("  exposed comm: sequential %8.3fs -> overlapped %8.3fs\n",
              sync_comm, breakdown.seconds.at("comm"));
  std::printf("  overlap fraction: %.1f%% of allreduce service time "
              "hidden behind backprop\n",
              100.0 * breakdown.overlap_fraction);
  std::printf("  walltime: sequential %.3fs -> overlapped %.3fs\n",
              sync_breakdown.total, breakdown.total);

#if COSMOFLOW_TELEMETRY_ENABLED
  // Cross-check: the same shape regenerated from trace spans, grouped
  // by span category and summed over every rank thread (plus the comm
  // helper thread's comm/helper/reduce spans).
  std::map<std::string, std::pair<double, std::int64_t>> by_category;
  for (const obs::TraceEvent& event : obs::Tracer::global().snapshot()) {
    auto& [seconds, count] = by_category[event.category];
    seconds += static_cast<double>(event.dur_ns) / 1e9;
    ++count;
  }
  std::printf("\n%-22s %10s %8s  (trace spans, all ranks)\n",
              "span category", "seconds", "events");
  for (const auto& [category, acc] : by_category) {
    std::printf("%-22s %10.3f %8lld\n", category.c_str(), acc.first,
                static_cast<long long>(acc.second));
  }
  if (obs::Tracer::global().dropped() > 0) {
    std::printf("(%llu events dropped; raise COSMOFLOW_TRACE_CAPACITY "
                "for full traces)\n",
                static_cast<unsigned long long>(
                    obs::Tracer::global().dropped()));
  }
  if (!trace_path.empty()) {
    if (obs::Tracer::global().write_chrome_trace(trace_path)) {
      std::printf("wrote chrome://tracing trace to %s\n",
                  trace_path.c_str());
    } else {
      std::printf("FAILED to write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
#else
  if (!trace_path.empty()) {
    std::printf("\n--trace ignored: built with COSMOFLOW_TELEMETRY=OFF\n");
  }
#endif

  if (!json_path.empty()) {
    obs::JsonObject rec;
    rec.field("bench", "fig3_breakdown")
        .field("commit", COSMOFLOW_GIT_SHA)
        .field("dhw", static_cast<std::int64_t>(dhw))
        .field("ranks", ranks)
        .field("epochs", epochs)
        .field("sim_comm_us", static_cast<std::int64_t>(sim_comm_us))
        .field("bucket_kb", static_cast<std::int64_t>(bucket_kb))
        .field("fused", fusion)
        .field("memplan", memplan)
        .field("threads_per_rank",
               static_cast<std::int64_t>(threads_per_rank))
        .field("peak_tensor_bytes",
               static_cast<std::int64_t>(
                   trainer.network(0).peak_tensor_bytes()));
    for (const auto& [category, seconds] : breakdown.seconds) {
      rec.field("sec_" + category, seconds);
    }
    // Standalone element-wise seconds under the stable name the
    // OBSERVABILITY.md schema uses; 0 when the epilogues absorbed it.
    rec.field("sec_eltwise", breakdown.seconds.at("activation"));
    rec.field("sec_walltime", breakdown.total)
        .field("overlap_fraction", breakdown.overlap_fraction)
        .field("sync_sec_comm", sync_comm)
        .field("sync_sec_walltime", sync_breakdown.total);
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::printf("FAILED to write json to %s\n", json_path.c_str());
      return 1;
    }
    const std::string line = rec.str() + "\n";
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\nlast epoch: train loss %.5f, val loss %.5f\n",
              stats.back().train_loss, stats.back().val_loss);
  std::printf("\npaper (Fig 3, 68-core KNL, single node): 3D convolutions "
              "are the largest stage; element-wise ops + reorders form "
              "the bulk of the non-conv compute; plugin threads spin "
              "(no real communication at 1 node); I/O fully hidden.\n");
  std::printf("shape targets: conv >= every other single category; "
              "exposed comm well below the sequential baseline once "
              "overlap is on; io_wait ~ 0 for in-memory sources.\n");
  return 0;
}
