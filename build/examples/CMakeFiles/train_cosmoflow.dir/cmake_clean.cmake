file(REMOVE_RECURSE
  "CMakeFiles/train_cosmoflow.dir/train_cosmoflow.cpp.o"
  "CMakeFiles/train_cosmoflow.dir/train_cosmoflow.cpp.o.d"
  "train_cosmoflow"
  "train_cosmoflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_cosmoflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
