// cfrecord: a record-oriented binary container with TFRecord framing.
//
// The paper stores its 1.4 TB training set as TFRecord files of 64
// samples each (§IV-C). Each record is framed exactly as TFRecord
// frames it:
//
//   uint64  length          (little endian)
//   uint32  masked crc32c(length bytes)
//   bytes   payload[length]
//   uint32  masked crc32c(payload)
//
// so short writes, bit rot and misaligned seeks all surface as
// CorruptRecordError at read time rather than as silently-wrong
// training data.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cf::data {

class CorruptRecordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RecordWriter {
 public:
  explicit RecordWriter(const std::string& path);
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void write(std::span<const std::uint8_t> payload);
  std::size_t records_written() const noexcept { return count_; }

  /// Flushes and closes; throws on I/O failure. Called by the
  /// destructor if not called explicitly (errors then swallowed).
  void close();

 private:
  std::ofstream out_;
  std::string path_;
  std::size_t count_ = 0;
  bool closed_ = false;
};

class RecordReader {
 public:
  explicit RecordReader(const std::string& path);

  /// Reads the next record; returns false at (clean) end of file.
  /// Throws CorruptRecordError on framing or checksum violations.
  bool read(std::vector<std::uint8_t>& payload);

  /// Byte offsets of every record in the file (a full validating
  /// scan); enables O(1) random access via read_at.
  std::vector<std::uint64_t> build_index();

  /// Reads the record at a byte offset previously returned by
  /// build_index().
  void read_at(std::uint64_t offset, std::vector<std::uint8_t>& payload);

  const std::string& path() const noexcept { return path_; }

 private:
  bool read_one(std::vector<std::uint8_t>& payload);

  std::ifstream in_;
  std::string path_;
};

}  // namespace cf::data
