// Layer abstraction for the CosmoFlow network.
//
// The paper trains with a mini-batch of one sample per rank, so a layer
// maps one activation tensor to one activation tensor. Convolutional
// activations travel in the blocked nCdhw16c layout end-to-end (the
// network inserts explicit reorders only at the plain-input boundary
// and before the dense head), mirroring the MKL-DNN graph the paper
// describes in §V-B.
//
// Layers are split model/stream (DESIGN.md §2.3): the layer object
// holds only immutable-after-finalize state — geometry from plan(),
// weights, fusion flags — while everything a single execution stream
// mutates (timers, forward staging workspace, backward scratch,
// gradient tensors) lives in a LayerExecState that the caller passes
// into every forward/backward. A dnn::ExecContext owns one
// LayerExecState per layer; standalone drivers (unit tests, kernel
// benches) use the convenience overloads below, which route through a
// lazily created layer-owned state instead.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnn/precision.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor.hpp"

namespace cf::dnn {

/// Floating point operation counts per pass for one sample, used for
/// the §V-A flop-rate accounting and Table I.
struct FlopCounts {
  std::int64_t fwd = 0;
  std::int64_t bwd_data = 0;
  std::int64_t bwd_weights = 0;

  std::int64_t total() const { return fwd + bwd_data + bwd_weights; }

  FlopCounts& operator+=(const FlopCounts& other) {
    fwd += other.fwd;
    bwd_data += other.bwd_data;
    bwd_weights += other.bwd_weights;
    return *this;
  }
};

/// One parameter tensor of the *model*: the value lives in the layer
/// (rebound into the network's param arena at finalize). Gradients are
/// per-stream state and live in a LayerExecState, parallel to this
/// list.
struct ParamSpec {
  std::string name;
  tensor::Tensor* value = nullptr;
};

/// Mutable view of one parameter tensor and its gradient, used by the
/// optimizer (LARC normalizes per parameter tensor) and by gradient
/// aggregation. Pairs a ParamSpec value with the gradient tensor of
/// one particular execution stream.
struct ParamView {
  std::string name;
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
};

/// Per-layer wall-clock accounting (Table I / Fig 3).
struct LayerTimers {
  runtime::TimeStats fwd;
  runtime::TimeStats bwd_data;
  runtime::TimeStats bwd_weights;
};

/// Per-layer profile row (Table I), produced by ExecContext::profiles.
struct LayerProfile {
  std::string name;
  std::string kind;
  runtime::TimeStats fwd;
  runtime::TimeStats bwd_data;
  runtime::TimeStats bwd_weights;
  FlopCounts flops;
};

/// Everything one execution stream mutates while driving one layer.
/// Owned by a dnn::ExecContext (one per layer) or by the layer itself
/// for standalone drives; the layer object never touches it except
/// through the reference passed into forward/backward, so N streams
/// can run the same layer concurrently.
struct LayerExecState {
  LayerTimers timers;

  /// Forward staging memory, size >= forward_workspace_floats()
  /// (the conv padded-source copy). Zeroed once at creation; when
  /// `workspace_shared` is set the region is aliased by other layers
  /// between calls, so the layer must re-establish any zero borders
  /// itself each call.
  std::span<float> workspace;
  bool workspace_shared = false;

  /// Backward scratch, size >= backward_scratch_floats(). Contents are
  /// step-transient — nothing may be carried across backward calls.
  std::span<float> scratch;

  /// Gradient tensors, parallel to param_specs(). Accumulated into by
  /// backward — callers zero them per step.
  std::vector<tensor::Tensor> grads;

  /// Minimum job-grid items per parallel_for chunk for this layer's
  /// kernels (ThreadPool grain semantics). 1 = spread maximally; the
  /// cost model raises it when per-chunk dispatch overhead would eat
  /// the win (ExecContext::apply_intraop_plan). Purely a partitioning
  /// hint: every kernel decomposition is deterministic, so any value
  /// yields bitwise-identical results (DESIGN.md §2.6).
  std::size_t intraop_grain = 1;
};

class Layer {
 public:
  explicit Layer(std::string name)
      : name_(std::move(name)),
        label_fwd_(name_ + "/fwd"),
        label_bwd_(name_ + "/bwd"),
        label_bww_(name_ + "/bww"),
        label_bwd_data_(name_ + "/bwd_data") {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// One of "conv", "pool", "dense", "activation", "reorder" — the
  /// category key for the Fig 3 breakdown.
  virtual std::string kind() const = 0;

  /// Validates `input` and computes the output shape; called once by
  /// Network::finalize. Allocates parameters and records geometry.
  virtual tensor::Shape plan(const tensor::Shape& input) = 0;

  // --- Graph-IR hooks (DESIGN.md §2.8) --------------------------------
  // A node in a dnn::Graph consumes arity() input tensors in a fixed
  // edge order. Single-input layers get the multi-input entry points
  // for free (they route to the plain overloads); multi-input layers
  // (Add) override the *_multi set and leave the single-input ones
  // throwing.

  /// Number of input tensors this layer consumes (graph fan-in).
  virtual std::size_t arity() const { return 1; }

  /// plan() over all input shapes, in edge order.
  virtual tensor::Shape plan_multi(std::span<const tensor::Shape> inputs) {
    if (inputs.size() != 1) {
      throw std::logic_error("Layer::plan_multi: " + name_ +
                             " is single-input");
    }
    return plan(inputs[0]);
  }

  /// forward() over all inputs, in edge order.
  virtual void forward_multi(std::span<const tensor::Tensor* const> srcs,
                             tensor::Tensor& dst, LayerExecState& exec,
                             runtime::ThreadPool& pool) const {
    if (srcs.size() != 1) {
      throw std::logic_error("Layer::forward_multi: " + name_ +
                             " is single-input");
    }
    forward(*srcs[0], dst, exec, pool);
  }

  /// Backward over all input edges. `dsrcs[k]` receives d(loss)/d(input
  /// k) when `need_dsrc[k]`; when `accumulate[k]` is additionally set
  /// the edge's contribution must be *added* to dsrcs[k] (the producer
  /// has other consumers whose contributions are already there) instead
  /// of overwriting it. The execution context handles accumulation for
  /// single-input layers itself, so they are only ever called with
  /// accumulate[0] == false here.
  virtual void backward_multi(std::span<const tensor::Tensor* const> srcs,
                              const tensor::Tensor& dst,
                              tensor::Tensor& ddst,
                              std::span<tensor::Tensor* const> dsrcs,
                              std::span<const std::uint8_t> need_dsrc,
                              std::span<const std::uint8_t> accumulate,
                              LayerExecState& exec,
                              runtime::ThreadPool& pool) const {
    if (srcs.size() != 1 || (need_dsrc[0] != 0 && accumulate[0] != 0)) {
      throw std::logic_error("Layer::backward_multi: " + name_ +
                             " is single-input");
    }
    backward(*srcs[0], dst, ddst, *dsrcs[0], need_dsrc[0] != 0, exec, pool);
  }

  /// Fresh, un-planned copy of this layer: same constructor arguments,
  /// same fusion state, no geometry and no weights — the raw material
  /// Network::make_shape_view re-plans at another input shape. Layers
  /// that cannot be re-planned keep the throwing default.
  virtual std::unique_ptr<Layer> clone_unplanned() const {
    throw std::logic_error("Layer::clone_unplanned: " + name_ +
                           " does not support per-shape cloning");
  }

  const tensor::Shape& input_shape() const noexcept { return input_shape_; }
  const tensor::Shape& output_shape() const noexcept {
    return output_shape_;
  }

  /// dst must have output_shape(). `exec` carries this stream's
  /// mutable state; the method is const on the layer so concurrent
  /// streams may share one layer object.
  virtual void forward(const tensor::Tensor& src, tensor::Tensor& dst,
                       LayerExecState& exec,
                       runtime::ThreadPool& pool) const = 0;

  /// Computes parameter gradients (accumulated into `exec.grads` —
  /// callers zero them per step) and, when `need_dsrc`, the input
  /// difference signal. `src` is the forward input of this layer.
  /// `ddst` is *consumed*: fused layers mask it with the activation
  /// derivative in place (it is dead after this call — the network's
  /// backward sweep never re-reads a layer's ddst, so no copy is owed).
  virtual void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                        tensor::Tensor& dsrc, bool need_dsrc,
                        LayerExecState& exec,
                        runtime::ThreadPool& pool) const = 0;

  /// Backward variant that also receives this layer's own forward
  /// output `dst`. The execution context calls this one: layers with a
  /// fused eltwise epilogue recover the activation-derivative mask
  /// from `dst`; everything else ignores it and falls through to the
  /// plain overload.
  virtual void backward(const tensor::Tensor& src,
                        const tensor::Tensor& dst, tensor::Tensor& ddst,
                        tensor::Tensor& dsrc, bool need_dsrc,
                        LayerExecState& exec,
                        runtime::ThreadPool& pool) const {
    static_cast<void>(dst);
    backward(src, ddst, dsrc, need_dsrc, exec, pool);
  }

  /// Convenience overloads for driving a layer outside an ExecContext
  /// (unit tests, kernel benches): they route through a lazily created
  /// layer-owned LayerExecState, so grads/timers accumulate on the
  /// layer exactly as they did when the layer owned them directly.
  void forward(const tensor::Tensor& src, tensor::Tensor& dst,
               runtime::ThreadPool& pool) {
    forward(src, dst, standalone_state(), pool);
  }
  void backward(const tensor::Tensor& src, tensor::Tensor& ddst,
                tensor::Tensor& dsrc, bool need_dsrc,
                runtime::ThreadPool& pool) {
    backward(src, ddst, dsrc, need_dsrc, standalone_state(), pool);
  }
  void backward(const tensor::Tensor& src, const tensor::Tensor& dst,
                tensor::Tensor& ddst, tensor::Tensor& dsrc, bool need_dsrc,
                runtime::ThreadPool& pool) {
    backward(src, dst, ddst, dsrc, need_dsrc, standalone_state(), pool);
  }

  // --- Reduced-precision inference (DESIGN.md §2.5) -------------------

  /// Which inference precisions this layer can execute. Every layer
  /// trivially supports kInt8Weights — a layer without quantizable
  /// weights just runs its fp32 forward (the mode only changes how
  /// conv/dense weights are stored). kBf16 needs an explicit
  /// forward_bf16 override, so the default declines it.
  virtual bool supports_precision(Precision p) const {
    return p == Precision::kFp32 || p == Precision::kInt8Weights;
  }

  /// bf16 forward: `src`/`dst` are raw buffers holding bf16 images of
  /// exactly the tensors the fp32 forward would see (same shapes, same
  /// blocked layouts); `params` is this layer's slice of the network's
  /// bf16 arena (Network::bf16_param_segment) — a plain bf16 image of
  /// the fp32 segment unless the layer repacked it (pack_weights_bf16).
  /// Kernels widen on load, accumulate in fp32 and narrow with
  /// round-to-nearest-even on store. Inference-only; the default
  /// throws.
  virtual void forward_bf16(const bf16_t* src, bf16_t* dst,
                            std::span<const bf16_t> params,
                            LayerExecState& exec,
                            runtime::ThreadPool& pool) const {
    static_cast<void>(src);
    static_cast<void>(dst);
    static_cast<void>(params);
    static_cast<void>(exec);
    static_cast<void>(pool);
    throw std::logic_error("Layer::forward_bf16: " + name_ +
                           " has no bf16 forward path");
  }

  /// Weights-only int8 forward: fp32 activations in and out, weights
  /// read from the quantized segment with per-output-channel `scales`
  /// (Network::int8_weight_segment / int8_scale_segment). The default
  /// ignores the segments and falls through to the fp32 forward, so
  /// parameterless layers run unchanged in kInt8Weights mode.
  virtual void forward_int8w(const tensor::Tensor& src, tensor::Tensor& dst,
                             std::span<const std::int8_t> qweights,
                             std::span<const float> scales,
                             LayerExecState& exec,
                             runtime::ThreadPool& pool) const {
    static_cast<void>(qweights);
    static_cast<void>(scales);
    forward(src, dst, exec, pool);
  }

  /// Invoked by Network::prepare_inference_precision after the plain
  /// bf16 image of this layer's segment was built, with a mutable view
  /// of that slice. A layer whose bf16 kernel wants a different weight
  /// packing (e.g. the ic-pair-interleaved tiles the vdpbf16ps conv
  /// kernels read) overwrites its weight portion in place — same
  /// element count, layer-private layout, forward_bf16 is the only
  /// reader. Default keeps the plain image.
  virtual void pack_weights_bf16(std::span<bf16_t> segment) const {
    static_cast<void>(segment);
  }

  /// int8 packing hooks for Network::prepare_inference_precision.
  /// Layers with quantizable weights report how many int8 elements and
  /// per-channel scales they need; parameterless layers report zero
  /// and are skipped.
  virtual std::size_t int8_weight_count() const { return 0; }
  virtual std::size_t int8_scale_count() const { return 0; }
  /// Calibrates per-output-channel symmetric scales from the current
  /// fp32 weight maxima and fills `qweights` (size int8_weight_count)
  /// and `scales` (size int8_scale_count).
  virtual void quantize_weights_int8(std::span<std::int8_t> qweights,
                                     std::span<float> scales) const {
    static_cast<void>(qweights);
    static_cast<void>(scales);
  }

  /// Floats of forward staging workspace this stream must provide
  /// (the conv padded-source copy). The execution context zeroes the
  /// region once at creation; see LayerExecState::workspace.
  virtual std::size_t forward_workspace_floats() const { return 0; }

  /// Floats of backward scratch this layer wants. Layer backwards of
  /// one stream run strictly one at a time, so a planned context sizes
  /// ONE shared arena to the max across layers (the memory planner;
  /// see DESIGN.md §2.2).
  virtual std::size_t backward_scratch_floats() const { return 0; }

  /// Ask the layer to absorb a trailing LeakyReLU (negative slope
  /// `slope`) into its own forward epilogue and backward entry. Layers
  /// that support MKL-DNN-style post-op fusion override this to return
  /// true; the network then drops the standalone activation layer.
  virtual bool fuse_leaky_relu(float slope) {
    static_cast<void>(slope);
    return false;
  }

  /// Parameter tensors of the model (empty for parameterless layers).
  /// Gradients are not part of the model — each ExecContext allocates
  /// its own, parallel to this list.
  virtual std::vector<ParamSpec> param_specs() { return {}; }

  /// Standalone-drive view pairing param_specs() with the layer-owned
  /// state's gradient tensors (lazily created).
  std::vector<ParamView> params() {
    std::vector<ParamSpec> specs = param_specs();
    std::vector<ParamView> views;
    if (specs.empty()) return views;
    LayerExecState& st = standalone_state();
    views.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      views.push_back({specs[i].name, specs[i].value, &st.grads[i]});
    }
    return views;
  }

  virtual FlopCounts flops() const { return {}; }

  std::int64_t param_count() {
    std::int64_t n = 0;
    for (const auto& p : param_specs()) n += p.value->shape().numel();
    return n;
  }

  /// Timers of the standalone (layer-owned) state; per-context timers
  /// live in the context's LayerExecState instead.
  LayerTimers& timers() { return standalone_state().timers; }
  void reset_timers() { standalone_state().timers = LayerTimers{}; }

  /// The layer-owned LayerExecState backing the convenience overloads.
  /// Created (or rebuilt) on first use after plan(): workspace and
  /// grads are zero-initialized, scratch is sized to the layer's
  /// request.
  LayerExecState& standalone_state() {
    const std::size_t ws = forward_workspace_floats();
    const std::size_t sc = backward_scratch_floats();
    std::vector<ParamSpec> specs = param_specs();
    if (standalone_ && standalone_->matches(ws, sc, specs)) {
      return standalone_->state;
    }
    auto st = std::make_unique<StandaloneExec>();
    st->workspace = runtime::AlignedBuffer<float>(ws);
    if (ws != 0) std::memset(st->workspace.data(), 0, ws * sizeof(float));
    st->scratch = runtime::AlignedBuffer<float>(sc);
    st->state.workspace = {st->workspace.data(), ws};
    st->state.scratch = {st->scratch.data(), sc};
    st->state.grads.reserve(specs.size());
    for (const auto& spec : specs) {
      st->state.grads.emplace_back(spec.value->shape());
    }
    standalone_ = std::move(st);
    return standalone_->state;
  }

  // Precomputed CF_TRACE_SCOPE labels ("conv2/fwd", ...) so the span
  // hot path never concatenates strings.
  const std::string& span_label_fwd() const noexcept { return label_fwd_; }
  const std::string& span_label_bwd() const noexcept { return label_bwd_; }
  const std::string& span_label_bww() const noexcept { return label_bww_; }
  const std::string& span_label_bwd_data() const noexcept {
    return label_bwd_data_;
  }

 protected:
  void set_shapes(const tensor::Shape& in, const tensor::Shape& out) {
    input_shape_ = in;
    output_shape_ = out;
  }

 private:
  struct StandaloneExec {
    LayerExecState state;
    runtime::AlignedBuffer<float> workspace;
    runtime::AlignedBuffer<float> scratch;

    // A state built before plan() (or before a re-plan) is stale;
    // detect by comparing the sizes it was built for.
    bool matches(std::size_t ws, std::size_t sc,
                 const std::vector<ParamSpec>& specs) const {
      if (workspace.size() != ws || scratch.size() != sc) return false;
      if (state.grads.size() != specs.size()) return false;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (state.grads[i].shape() != specs[i].value->shape()) return false;
      }
      return true;
    }
  };

  std::string name_;
  std::string label_fwd_;
  std::string label_bwd_;
  std::string label_bww_;
  std::string label_bwd_data_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
  std::unique_ptr<StandaloneExec> standalone_;
};

}  // namespace cf::dnn
